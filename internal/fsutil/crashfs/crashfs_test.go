package crashfs

import (
	"bytes"
	"os"
	"testing"

	"rmscale/internal/fsutil"
)

func write(t *testing.T, fs *FS, path, content string) fsutil.File {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(content)); err != nil {
		t.Fatal(err)
	}
	return f
}

func readOn(t *testing.T, fs *FS, path string) (string, bool) {
	t.Helper()
	b, err := fs.ReadFile(path)
	if err != nil {
		return "", false
	}
	return string(b), true
}

// TestUnsyncedContentLostOnPessimal: buffered writes vanish, synced
// writes survive.
func TestUnsyncedContentLostOnPessimal(t *testing.T) {
	fs := New(Options{})
	f := write(t, fs, "/a", "durable")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("/"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("+buffered")); err != nil {
		t.Fatal(err)
	}
	disk := fs.Materialize(Variant{Name: "pessimal"})
	got, ok := readOn(t, disk, "/a")
	if !ok || got != "durable" {
		t.Fatalf("pessimal image holds %q, want %q", got, "durable")
	}
	flushed := fs.Materialize(Variant{Name: "flushed", keepUnsynced: true})
	got, _ = readOn(t, flushed, "/a")
	if got != "durable+buffered" {
		t.Fatalf("flushed image holds %q, want full content", got)
	}
}

// TestEntryVolatileUntilDirSync: a synced file whose directory entry
// was never committed is absent from the pessimal image — the exact
// failure mode of renaming without fsyncing the parent.
func TestEntryVolatileUntilDirSync(t *testing.T) {
	fs := New(Options{})
	f := write(t, fs, "/a", "content")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	disk := fs.Materialize(Variant{Name: "pessimal"})
	if _, ok := readOn(t, disk, "/a"); ok {
		t.Fatal("entry survived a crash without a parent dir sync")
	}
	if err := fs.SyncDir("/"); err != nil {
		t.Fatal(err)
	}
	disk = fs.Materialize(Variant{Name: "pessimal"})
	if got, ok := readOn(t, disk, "/a"); !ok || got != "content" {
		t.Fatalf("entry lost despite dir sync (got %q, %v)", got, ok)
	}
}

// TestRenameVolatileUntilDirSync: after rename but before SyncDir, a
// crash can revert to the pre-rename binding; after SyncDir it
// cannot.
func TestRenameVolatileUntilDirSync(t *testing.T) {
	fs := New(Options{})
	f := write(t, fs, "/tmp1", "payload")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("/"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/tmp1", "/final"); err != nil {
		t.Fatal(err)
	}
	disk := fs.Materialize(Variant{Name: "pessimal"})
	if _, ok := readOn(t, disk, "/final"); ok {
		t.Fatal("rename survived a crash without a parent dir sync")
	}
	if got, ok := readOn(t, disk, "/tmp1"); !ok || got != "payload" {
		t.Fatalf("pre-rename binding lost too (got %q, %v)", got, ok)
	}
	if err := fs.SyncDir("/"); err != nil {
		t.Fatal(err)
	}
	disk = fs.Materialize(Variant{Name: "pessimal"})
	if got, ok := readOn(t, disk, "/final"); !ok || got != "payload" {
		t.Fatalf("rename lost despite dir sync (got %q, %v)", got, ok)
	}
	if _, ok := readOn(t, disk, "/tmp1"); ok {
		t.Fatal("old binding resurrected despite dir sync")
	}
}

// TestTornAndGarbledVariants: an unsynced append tail enumerates torn
// prefixes at sector granularity and a garbled final sector.
func TestTornAndGarbledVariants(t *testing.T) {
	fs := New(Options{Sector: 4})
	f := write(t, fs, "/log", "base")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("/"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("0123456789")); err != nil { // 10-byte tail = 3 sectors
		t.Fatal(err)
	}
	vs := fs.Variants(10)
	var names []string
	for _, v := range vs {
		names = append(names, v.Name)
	}
	want := []string{"pessimal", "flushed", "torn-1", "torn-2", "torn-3", "garbled"}
	if len(names) != len(want) {
		t.Fatalf("variants %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("variants %v, want %v", names, want)
		}
	}
	byName := map[string]Variant{}
	for _, v := range vs {
		byName[v.Name] = v
	}
	if got, _ := readOn(t, fs.Materialize(byName["torn-1"]), "/log"); got != "base0123" {
		t.Fatalf("torn-1 image %q, want %q", got, "base0123")
	}
	if got, _ := readOn(t, fs.Materialize(byName["torn-3"]), "/log"); got != "base0123456789" {
		t.Fatalf("torn-3 image %q, want full tail", got)
	}
	g, _ := readOn(t, fs.Materialize(byName["garbled"]), "/log")
	if len(g) != len("base0123456789") {
		t.Fatalf("garbled image length %d, want %d", len(g), len("base0123456789"))
	}
	if g == "base0123456789" {
		t.Fatal("garbled image is not garbled")
	}
	if g[:len(g)-4] != "base012345" {
		t.Fatalf("garbled image %q damaged more than its final sector", g)
	}
}

// TestCrashAtIsPrefixExact: CrashAt=n leaves exactly n-1 ops applied
// and the filesystem returns errors (not panics) afterwards.
func TestCrashAtIsPrefixExact(t *testing.T) {
	fs := New(Options{CrashAt: 3})
	crashed := Catch(func() {
		f := write(t, fs, "/a", "one") // ops 1 (create) and 2 (write)
		_ = f.Sync()                   // op 3: crashes
		t.Fatal("unreachable: crash did not fire")
	})
	if !crashed {
		t.Fatal("Catch reported no crash")
	}
	if got := fs.OpCount(); got != 2 {
		t.Fatalf("op count after crash %d, want 2", got)
	}
	if !fs.Crashed() {
		t.Fatal("Crashed() false after crash")
	}
	if _, err := fs.ReadFile("/a"); err == nil {
		t.Fatal("post-crash operation succeeded")
	}
	// The flushed image still sees the two applied ops' effects.
	if got, ok := readOn(t, fs.Materialize(Variant{Name: "flushed", keepUnsynced: true}), "/a"); !ok || got != "one" {
		t.Fatalf("flushed image after crash %q, %v", got, ok)
	}
}

// TestWriteAtomicSurvivesPessimalCrash: the full production
// WriteAtomic sequence (temp + sync + rename + parent SyncDir) makes
// the destination durable against the pessimal image, and with
// DropDirSyncs — simulating the pre-fix code path — it does not.
func TestWriteAtomicSurvivesPessimalCrash(t *testing.T) {
	fs := New(Options{})
	if err := fs.WriteFileAtomic("/dest", []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	disk := fs.Materialize(Variant{Name: "pessimal"})
	if got, ok := readOn(t, disk, "/dest"); !ok || got != "payload" {
		t.Fatalf("atomic write lost on pessimal image (got %q, %v)", got, ok)
	}

	buggy := New(Options{DropDirSyncs: true})
	if err := buggy.WriteFileAtomic("/dest", []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	disk = buggy.Materialize(Variant{Name: "pessimal"})
	if _, ok := readOn(t, disk, "/dest"); ok {
		t.Fatal("atomic write survived without effective dir syncs; the harness could not catch the parent-fsync regression")
	}
}

// TestTruncateTailResurrection: content truncated but not synced can
// resurrect on the pessimal image — the model behind the journal's
// sync-after-truncate.
func TestTruncateTailResurrection(t *testing.T) {
	fs := New(Options{})
	f := write(t, fs, "/j", "good+garbage")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("/"); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(int64(len("good+"))); err != nil {
		t.Fatal(err)
	}
	disk := fs.Materialize(Variant{Name: "pessimal"})
	if got, _ := readOn(t, disk, "/j"); got != "good+garbage" {
		t.Fatalf("unsynced truncate already durable (%q); model should keep the old image", got)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	disk = fs.Materialize(Variant{Name: "pessimal"})
	if got, _ := readOn(t, disk, "/j"); got != "good+" {
		t.Fatalf("synced truncate not durable (%q)", got)
	}
}

// TestSnapshotAndMaterializeIndependence: materializing does not
// disturb the crashed filesystem.
func TestSnapshotAndMaterializeIndependence(t *testing.T) {
	fs := New(Options{})
	f := write(t, fs, "/a", "x")
	_ = f.Sync()
	_ = fs.SyncDir("/")
	d1 := fs.Materialize(Variant{Name: "pessimal"})
	d2 := fs.Materialize(Variant{Name: "pessimal"})
	s1, s2 := d1.Snapshot(), d2.Snapshot()
	if len(s1) != len(s2) || !bytes.Equal(s1["/a"], s2["/a"]) {
		t.Fatalf("repeated materialization differs: %v vs %v", s1, s2)
	}
	// Mutating one image leaves the other and the original untouched.
	g, err := d1.OpenFile("/a", os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("mut")); err != nil {
		t.Fatal(err)
	}
	if got, _ := readOn(t, d2, "/a"); got != "x" {
		t.Fatalf("sibling image mutated: %q", got)
	}
	if got, _ := readOn(t, fs, "/a"); got != "x" {
		t.Fatalf("original mutated: %q", got)
	}
}
