// Package dep holds a callee of a hot root in another package:
// hotness crosses package boundaries through the call graph, so the
// boxing here is charged to the hot path even though this package
// carries no marks of its own. Never built by the module.
package dep

// Box is reachable from hotalloc.Hot through a concrete call.
func Box(v int) any {
	return eat(v) // want "argument boxes v into interface any on the hot path"
}

func eat(x any) any { return x }
