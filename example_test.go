package rmscale_test

import (
	"fmt"

	"rmscale"
)

// ExampleNewEngine runs one deterministic grid simulation and reads the
// paper's accounting terms off the summary.
func ExampleNewEngine() {
	cfg := rmscale.DefaultConfig()
	cfg.Workload.Horizon = 1000
	cfg.Horizon = 1000
	cfg.Drain = 1500

	eng, err := rmscale.NewEngine(cfg, rmscale.NewCentral())
	if err != nil {
		fmt.Println(err)
		return
	}
	sum := eng.Run()
	fmt.Printf("jobs arrived: %d\n", sum.Jobs)
	fmt.Printf("efficiency in (0,1): %v\n", sum.Efficiency > 0 && sum.Efficiency < 1)
	fmt.Printf("overheads non-negative: %v\n", sum.G >= 0 && sum.H >= 0)
	// Output:
	// jobs arrived: 143
	// efficiency in (0,1): true
	// overheads non-negative: true
}

// ExampleModelNames lists the paper's seven RMS models in order.
func ExampleModelNames() {
	for _, name := range rmscale.ModelNames() {
		fmt.Println(name)
	}
	// Output:
	// CENTRAL
	// LOWEST
	// RESERVE
	// AUCTION
	// S-I
	// R-I
	// Sy-I
}

// ExamplePaperBand shows the isoefficiency band the evaluation holds.
func ExamplePaperBand() {
	b := rmscale.PaperBand()
	fmt.Printf("[%.2f, %.2f]\n", b.Lo, b.Hi)
	fmt.Println(b.Contains(0.40), b.Contains(0.50))
	// Output:
	// [0.38, 0.42]
	// true false
}

// ExampleNewIsoAnalysis derives the isoefficiency constants of
// Section 2.3 from a base observation.
func ExampleNewIsoAnalysis() {
	base := rmscale.Observation{F: 1000, G: 600, H: 900}
	iso, err := rmscale.NewIsoAnalysis(base, 0.4) // alpha = 2.5
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("c = %.2f, c' = %.2f\n", iso.C, iso.CPrime)
	fmt.Println("condition f>c*g holds for f=2, g=2:", iso.Condition(2, 2))
	fmt.Println("condition f>c*g holds for f=2, g=8:", iso.Condition(2, 8))
	// Output:
	// c = 0.40, c' = 0.60
	// condition f>c*g holds for f=2, g=2: true
	// condition f>c*g holds for f=2, g=8: false
}
