package service

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// failFS is an fsutil.FS whose durable writes always fail — the
// smallest disk-fault injection.
type failFS struct{ err error }

func (f failFS) WriteFileAtomic(string, []byte, os.FileMode) error { return f.err }
func (f failFS) AppendSync(*os.File, []byte) error                 { return f.err }

func mustNewStore(t *testing.T, cfg StoreConfig) *Store {
	t.Helper()
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStoreChecksumQuarantine pins the integrity contract: a disk
// payload whose bytes no longer match their sidecar is quarantined and
// reported as a miss, never served.
func TestStoreChecksumQuarantine(t *testing.T) {
	dir := t.TempDir()
	s1 := mustNewStore(t, StoreConfig{Dir: dir})
	payload := []byte(`{"summary":1}` + "\n")
	s1.Put("aaa", payload)

	// Flip the on-disk bytes behind the store's back, then read through
	// a fresh store (empty memory tier) as a restart would.
	if err := os.WriteFile(filepath.Join(dir, "results", "aaa.json"), []byte(`{"summary":2}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustNewStore(t, StoreConfig{Dir: dir})
	if _, ok := s2.Get("aaa"); ok {
		t.Fatal("corrupt payload served")
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1", st.Corrupt)
	}
	if _, err := os.Stat(filepath.Join(dir, "results", "quarantine", "aaa.json")); err != nil {
		t.Fatalf("corrupt payload not quarantined: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "results", "aaa.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("corrupt payload still in place")
	}
	// Has agrees with Get, so restart resume re-executes.
	if s2.Has("aaa") {
		t.Fatal("Has accepted a quarantined entry")
	}
}

// TestStoreLegacyBackfill: a payload written before the checksum era
// (no sidecar) is accepted and its sidecar backfilled on first read.
func TestStoreLegacyBackfill(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "results"), 0o755); err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"legacy":true}` + "\n")
	if err := os.WriteFile(filepath.Join(dir, "results", "bbb.json"), payload, 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustNewStore(t, StoreConfig{Dir: dir})
	b, ok := s.Get("bbb")
	if !ok || string(b) != string(payload) {
		t.Fatalf("legacy entry not served: ok=%v b=%q", ok, b)
	}
	sum, err := os.ReadFile(filepath.Join(dir, "results", "bbb.json.sha256"))
	if err != nil {
		t.Fatalf("sidecar not backfilled: %v", err)
	}
	if string(sum) != checksum(payload)+"\n" {
		t.Fatalf("backfilled sidecar %q, want %q", sum, checksum(payload))
	}
}

// TestStoreLRUEviction pins size-bounded GC: over MaxResults, the
// least recently used entry is evicted from memory and disk.
func TestStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	s := mustNewStore(t, StoreConfig{Dir: dir, MaxResults: 2})
	s.Put("a", []byte("payload-a"))
	s.Put("b", []byte("payload-b"))
	if _, ok := s.Get("a"); !ok { // touch a: b becomes the LRU entry
		t.Fatal("a missing before eviction")
	}
	s.Put("c", []byte("payload-c"))

	if st := s.Stats(); st.Len != 2 || st.Evicted != 1 {
		t.Fatalf("stats = len %d evicted %d, want 2/1", st.Len, st.Evicted)
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("LRU entry b still served")
	}
	if _, err := os.Stat(filepath.Join(dir, "results", "b.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("evicted entry b still on disk")
	}
	for _, id := range []string{"a", "c"} {
		if _, ok := s.Get(id); !ok {
			t.Fatalf("survivor %s missing", id)
		}
	}
}

// TestStoreMaxBytes: the byte bound evicts in LRU order too, and the
// accounting tracks the memory tier exactly.
func TestStoreMaxBytes(t *testing.T) {
	s := mustNewStore(t, StoreConfig{MaxBytes: 20})
	s.Put("a", make([]byte, 10))
	s.Put("b", make([]byte, 10))
	if st := s.Stats(); st.Bytes != 20 || st.Len != 2 {
		t.Fatalf("stats = bytes %d len %d, want 20/2", st.Bytes, st.Len)
	}
	s.Put("c", make([]byte, 10))
	st := s.Stats()
	if st.Bytes > 20 || st.Evicted != 1 {
		t.Fatalf("stats = bytes %d evicted %d, want <=20 bytes after 1 eviction", st.Bytes, st.Evicted)
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("LRU entry a survived the byte bound")
	}
}

// TestStoreMaxAge: entries older than MaxAge on the injected clock are
// evicted at the next GC opportunity.
func TestStoreMaxAge(t *testing.T) {
	clk := newFakeClock()
	s := mustNewStore(t, StoreConfig{MaxAge: time.Hour, Clock: clk})
	s.Put("old", []byte("x"))
	clk.advance(2 * time.Hour)
	s.Put("new", []byte("y")) // Put runs GC
	if _, ok := s.Get("old"); ok {
		t.Fatal("expired entry still served")
	}
	if _, ok := s.Get("new"); !ok {
		t.Fatal("fresh entry missing")
	}
	if st := s.Stats(); st.Evicted != 1 || st.Len != 1 {
		t.Fatalf("stats = evicted %d len %d, want 1/1", st.Evicted, st.Len)
	}
}

// TestStoreEvictionSafeForInflightFetches: a slice fetched before an
// eviction stays valid and unchanged — payloads are never mutated or
// recycled.
func TestStoreEvictionSafeForInflightFetches(t *testing.T) {
	s := mustNewStore(t, StoreConfig{MaxResults: 1})
	s.Put("a", []byte("held-bytes"))
	held, ok := s.Get("a")
	if !ok {
		t.Fatal("a missing")
	}
	s.Put("b", []byte("evicts-a"))
	if _, ok := s.Get("a"); ok {
		t.Fatal("a not evicted")
	}
	if string(held) != "held-bytes" {
		t.Fatalf("in-flight fetch corrupted by eviction: %q", held)
	}
}

// TestStoreDegradedMemOnly pins graceful degradation: a failing disk
// never fails a Put — the store keeps serving from memory and reports
// why durability is gone.
func TestStoreDegradedMemOnly(t *testing.T) {
	dir := t.TempDir()
	s := mustNewStore(t, StoreConfig{Dir: dir, FS: failFS{err: errors.New("disk full")}})
	s.Put("a", []byte("mem-only"))
	b, ok := s.Get("a")
	if !ok || string(b) != "mem-only" {
		t.Fatalf("memory tier lost the payload: ok=%v b=%q", ok, b)
	}
	why, degraded := s.Degraded()
	if !degraded || why != "disk full" {
		t.Fatalf("degraded = %v %q, want true \"disk full\"", degraded, why)
	}
	if _, err := os.Stat(filepath.Join(dir, "results", "a.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("payload reached disk despite the failing FS")
	}
	if st := s.Stats(); st.Degraded == "" {
		t.Fatal("stats does not surface degradation")
	}
}
