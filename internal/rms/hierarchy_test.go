package rms

import (
	"testing"

	"rmscale/internal/grid"
)

func TestHierarchyNotInPaperRoster(t *testing.T) {
	for _, n := range Names() {
		if n == "HIERARCHY" {
			t.Fatal("HIERARCHY is an extension, not one of the paper's seven models")
		}
	}
}

func TestHierarchyEndToEnd(t *testing.T) {
	cfg := smallConfig()
	e, err := grid.New(cfg, NewHierarchy())
	if err != nil {
		t.Fatal(err)
	}
	sum := e.Run()
	m := e.Metrics
	t.Logf("HIERARCHY: %v transfers=%d msgs=%d", sum, m.JobTransfers, m.PolicyMsgs)
	if m.JobsCompleted+m.JobsLost+e.Unfinished() != m.JobsArrived {
		t.Fatal("job conservation violated")
	}
	if m.PolicyMsgs == 0 {
		t.Fatal("no cluster reports flowed to the root")
	}
	if m.JobTransfers == 0 {
		t.Fatal("no REMOTE jobs moved through the hierarchy")
	}
	if frac := float64(m.JobsCompleted) / float64(m.JobsArrived); frac < 0.9 {
		t.Fatalf("only %.2f completed", frac)
	}
}

func TestHierarchyLocalStaysLocal(t *testing.T) {
	p := NewHierarchy()
	e := protoEngine(t, p, 3, 3)
	p.OnJob(e.Scheduler(1), localJob(1, 1))
	e.K.Run(3000)
	if e.Metrics.JobTransfers != 0 {
		t.Fatal("LOCAL job travelled the hierarchy")
	}
	if e.Metrics.JobsCompleted != 1 {
		t.Fatal("LOCAL job not completed")
	}
}

func TestHierarchyRemoteRoutesViaRoot(t *testing.T) {
	p := NewHierarchy()
	e := protoEngine(t, p, 3, 3)
	// Give the root a table: cluster 2 idle, cluster 1 loaded.
	root := e.Scheduler(0)
	p.OnMessage(root, &grid.Message{Kind: msgHierReport, From: 1, To: 0,
		Payload: hierReport{cluster: 1, avg: 5}})
	p.OnMessage(root, &grid.Message{Kind: msgHierReport, From: 2, To: 0,
		Payload: hierReport{cluster: 2, avg: 0}})
	// Load the root's own cluster view so it does not win the route.
	loadCluster(e, 0, 3)

	// A REMOTE job submitted at loaded cluster 1 must reach cluster 2.
	p.OnJob(e.Scheduler(1), remoteJob(7, 1))
	e.K.Run(6000)
	// Two transfers: leaf -> root, root -> cluster 2.
	if e.Metrics.JobTransfers != 2 {
		t.Fatalf("transfers = %d, want 2", e.Metrics.JobTransfers)
	}
	if e.Metrics.JobsCompleted != 1 {
		t.Fatal("routed job not completed")
	}
	// The routed cluster must actually have executed it: its resources
	// saw load.
	busySeen := false
	for _, rid := range e.Scheduler(2).LocalResources() {
		if l, _ := e.Scheduler(2).View(rid); l > 0 {
			busySeen = true
		}
	}
	if !busySeen {
		t.Fatal("cluster 2 never saw the routed job")
	}
}

func TestHierarchyRootKeepsJobWhenBest(t *testing.T) {
	p := NewHierarchy()
	e := protoEngine(t, p, 3, 3)
	root := e.Scheduler(0)
	p.OnMessage(root, &grid.Message{Kind: msgHierReport, From: 1, To: 0,
		Payload: hierReport{cluster: 1, avg: 4}})
	p.OnMessage(root, &grid.Message{Kind: msgHierReport, From: 2, To: 0,
		Payload: hierReport{cluster: 2, avg: 4}})
	// Root cluster idle: a REMOTE job submitted at the root stays.
	p.OnJob(root, remoteJob(7, 0))
	e.K.Run(5000)
	if e.Metrics.JobTransfers != 0 {
		t.Fatalf("root exported a job it should keep (transfers %d)", e.Metrics.JobTransfers)
	}
}

func TestHierarchyReportsFlow(t *testing.T) {
	p := NewHierarchy()
	e := protoEngine(t, p, 3, 3)
	p.OnTick(e.Scheduler(1))
	p.OnTick(e.Scheduler(0)) // root does not report to itself
	e.K.Run(2000)
	st := e.Scheduler(0).State.(*hierState)
	if _, ok := st.clusterLoad[1]; !ok {
		t.Fatal("root never received cluster 1's report")
	}
	if _, ok := st.clusterLoad[0]; ok {
		t.Fatal("root reported to itself")
	}
}
