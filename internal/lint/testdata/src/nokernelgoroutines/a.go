// Package nokernelgoroutines seeds concurrency violations for the
// analyzer's analysistest case. Never built by the module.
package nokernelgoroutines

import "sync" // want "kernel package imports \"sync\""

func violations() {
	var mu sync.Mutex
	mu.Lock()
	go violations() // want "go statement in a deterministic-kernel package"
	ch := make(chan int) // want "channel type in a deterministic-kernel package"
	ch <- 1              // want "channel send in a deterministic-kernel package"
	select {             // want "select statement in a deterministic-kernel package"
	default:
	}
}
