// This file is the package's built-in workload: a synthetic
// multi-cluster grid model shaped like the engine's event mix (dense
// local status updates, periodic cross-cluster volunteering over link
// latency), expressed directly against the partitioned API. It is what
// the perfbench sim/par/* metrics run — the large-topology speedup
// qualification — and what the equivalence and stress tests drive at
// different worker counts.

package par

import (
	"rmscale/internal/sim"
)

// BenchSpec sizes the synthetic multi-cluster model. Every field is
// deterministic input: two runs of the same spec produce byte-identical
// BenchResults at any worker count.
type BenchSpec struct {
	// Clusters is the shard count; Resources the entities per shard.
	Clusters  int
	Resources int
	// Update is the local status-update period per resource; Volunteer
	// the cross-cluster message period per cluster.
	Update    sim.Time
	Volunteer sim.Time
	// Latency is the inter-cluster link latency — the executor's
	// lookahead, exactly as the grid derives it from its topology.
	Latency sim.Time
	// Work is the synthetic per-event computation (state-mixing
	// rounds); it stands in for the scheduling policy work a real
	// engine event performs.
	Work int
	// Horizon bounds the run.
	Horizon sim.Time
	// Seed perturbs per-shard state deterministically.
	Seed uint64
}

// LargeTopology is the speedup-qualification workload: a topology well
// beyond the paper's laptop-scale cases, sized so one serial run takes
// on the order of a second and each lookahead window carries hundreds
// of events per shard — the regime where conservative windows pay.
func LargeTopology() BenchSpec {
	return BenchSpec{
		Clusters:  16,
		Resources: 64,
		Update:    1,
		Volunteer: 8,
		Latency:   4,
		Work:      800,
		Horizon:   220,
		Seed:      1,
	}
}

// BenchResult condenses one run into exactly comparable values: the
// equivalence suite asserts results are identical across worker
// counts, and perfbench exact-gates the deterministic fields.
type BenchResult struct {
	Events      uint64 // kernel events executed
	Cross       int    // cross-shard messages delivered
	Windows     int    // barrier rounds
	Fingerprint uint64 // order-sensitive digest of every shard's event stream
}

// benchShard is the per-shard model state. peers is the read-only
// shard roster used to address cross-cluster sends; every mutable
// field belongs to this shard alone and is only touched by its own
// events.
type benchShard struct {
	rng   uint64
	loads []float64
	hash  uint64
	s     *Shard
	spec  BenchSpec
	peers []*benchShard

	// updFns and volFn are the pre-built reschedule closures: one per
	// resource plus one volunteer loop, reused on every period so the
	// steady state allocates nothing per local event (the same
	// discipline the kernel free-list enforces for Event structs).
	updFns []func()
	volFn  func()
}

// mix is a splitmix64 step: the model's deterministic per-shard RNG
// and digest primitive in one.
func mix(h uint64) uint64 {
	h += 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	return h ^ h>>31
}

// note folds an event tag into the shard's order-sensitive digest: any
// reordering of one shard's event stream changes the fingerprint.
func (b *benchShard) note(tag uint64) {
	b.hash = mix(b.hash ^ tag)
}

// work burns the configured synthetic computation, data-dependent so
// it cannot be optimized away.
func (b *benchShard) work(salt uint64) {
	h := b.hash ^ salt
	for i := 0; i < b.spec.Work; i++ {
		h = mix(h)
	}
	b.note(h)
}

// update is one resource's periodic status update: local work plus a
// deterministic jitter on the next period.
func (b *benchShard) update(r int) {
	b.rng = mix(b.rng)
	b.loads[r] = float64(b.rng%1000) / 1000
	b.work(uint64(r))
	jitter := sim.Time(b.rng%128) * b.spec.Update / 1024
	b.s.K.After(b.spec.Update+jitter, b.updFns[r])
}

// volunteer sends one cross-cluster message to a deterministic peer,
// arriving one link latency later — the lookahead bound exactly. The
// delivery closure runs on the destination shard's kernel during the
// destination's window, so it touches only destination state.
func (b *benchShard) volunteer() {
	b.rng = mix(b.rng)
	peer := (b.s.ID() + 1 + int(b.rng%uint64(b.spec.Clusters-1))) % b.spec.Clusters
	payload := b.rng
	dst := b.peers[peer]
	b.s.Send(peer, b.s.K.Now()+b.spec.Latency, func() {
		dst.receive(payload)
	})
	b.s.K.After(b.spec.Volunteer, b.volFn)
}

// receive folds a volunteer payload into the receiving shard's state.
func (b *benchShard) receive(payload uint64) {
	b.work(payload)
}

// RunBench executes the spec on a fresh executor with the given worker
// count and returns the deterministic result.
func RunBench(spec BenchSpec, workers int) BenchResult {
	if spec.Clusters < 2 {
		panic("par: bench spec needs at least 2 clusters")
	}
	x := New(spec.Clusters, spec.Latency, workers)
	states := make([]*benchShard, spec.Clusters)
	for i := range states {
		b := &benchShard{
			rng:   mix(spec.Seed ^ uint64(i)*0x9e3779b97f4a7c15),
			loads: make([]float64, spec.Resources),
			hash:  mix(uint64(i) + spec.Seed),
			s:     x.Shard(i),
			spec:  spec,
			peers: states,
		}
		states[i] = b
		b.updFns = make([]func(), spec.Resources)
		b.volFn = b.volunteer
		for r := 0; r < spec.Resources; r++ {
			r := r
			b.updFns[r] = func() { b.update(r) }
			offset := sim.Time(mix(b.rng+uint64(r))%1024) * spec.Update / 1024
			b.s.K.Schedule(offset, b.updFns[r])
		}
		offset := sim.Time(mix(b.rng)%1024) * spec.Volunteer / 1024
		b.s.K.Schedule(offset, b.volFn)
	}
	events := x.Run(spec.Horizon)

	res := BenchResult{
		Events:  events,
		Cross:   x.Stats().Delivered,
		Windows: x.Stats().Windows,
	}
	var fp uint64
	for _, b := range states {
		fp = mix(fp ^ b.hash)
	}
	res.Fingerprint = fp
	return res
}
