// Package hotalloc seeds every allocation shape the hot-path budget
// analyzer bans, next to the exemptions it documents. Never built by
// the module.
package hotalloc

import "hotalloc/dep"

var scratch []int

type pair struct{ a, b int }

type tracer struct{ enabled bool }

func (t tracer) On() bool           { return t.enabled }
func (t tracer) Emit(vs ...int) int { return len(vs) }
func variadic(vs ...int) int        { return len(vs) }
func drop(x any)                    {}
func name() string                  { return "k" }

// Hot stands in for a kernel event-loop function.
//
//lint:hotpath fixture: stands in for the fel.go event loop
func Hot(buf []byte, n int, tr tracer) []byte {
	m := map[int]int{} // want "map literal allocates in //lint:hotpath function hotalloc\\.Hot"
	_ = m
	s := []int{1, 2} // want "slice literal allocates a backing array"
	_ = s
	p := &pair{a: 1} // want "&composite literal escapes to the heap"
	_ = p
	b := make([]byte, n) // want "make allocates"
	_ = b
	scratch = append(scratch, n)  // self-append scratch reuse: exempt
	grown := append(buf, byte(n)) // want "append grows a new backing array"
	cb := func() int { return n } // want "func literal allocates a closure"
	_ = cb
	raw := []byte(name()) // want "conversion to \\[\\]byte copies its operand"
	_ = raw
	variadic(1, 2) // want "variadic call variadic materializes an argument slice"
	if tr.On() {
		tr.Emit(1, 2, 3) // guarded by the On() tracer idiom: exempt
	}
	_ = dep.Box(n)
	helper(n)
	return grown
}

// helper carries no mark: it is hot only because Hot calls it.
func helper(v int) {
	drop(v) // want "argument boxes v into interface any on the hot path rooted at //lint:hotpath hotalloc\\.Hot \\(via hotalloc\\.helper\\)"
}

// Cold is unreachable from any mark: the same constructs are clean.
func Cold(n int) []int {
	out := make([]int, n)
	return append(out, 1)
}

// HotAllowed shows the site-level exemption for a deliberate
// allocation inside a marked function.
//
//lint:hotpath fixture: suppression-anchor demonstration
func HotAllowed(n int) []byte {
	//lint:allow hotalloc fixture: one-time cold-start growth, amortized over the run
	return make([]byte, n)
}
