package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Key is a content address: the SHA-256 of the canonical encoding of
// whatever inputs produced a result. Two evaluations with identical
// inputs hash to the same key, so the cache collapses repeated and
// overlapping work no matter which code path requested it.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (the on-disk file name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyOf derives a content address from the given parts. Each part is
// canonically encoded as JSON (struct fields in declaration order, map
// keys sorted), so plain config structs hash deterministically. The
// parts should include a format-version string so incompatible cache
// generations never collide.
func KeyOf(parts ...any) (Key, error) {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			return Key{}, fmt.Errorf("runner: hashing cache key: %w", err)
		}
	}
	var k Key
	copy(k[:], h.Sum(nil))
	return k, nil
}

// Cache is a content-addressed result store with a memory tier and an
// optional disk tier. It is safe for concurrent use; hit and miss
// counts feed the progress reporter's cache hit rate.
type Cache struct {
	mu  sync.Mutex
	mem map[Key][]byte
	dir string // "" = memory only

	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache returns a cache persisting under dir/cache, or a purely
// in-memory cache when dir is empty.
func NewCache(dir string) (*Cache, error) {
	c := &Cache{mem: make(map[Key][]byte)}
	if dir != "" {
		c.dir = filepath.Join(dir, "cache")
		if err := os.MkdirAll(c.dir, 0o755); err != nil {
			return nil, fmt.Errorf("runner: cache dir: %w", err)
		}
	}
	return c, nil
}

// Get returns the payload stored under k. Disk hits are promoted into
// the memory tier.
func (c *Cache) Get(k Key) ([]byte, bool) {
	c.mu.Lock()
	v, ok := c.mem[k]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return v, true
	}
	if c.dir != "" {
		if b, err := os.ReadFile(filepath.Join(c.dir, k.String())); err == nil {
			c.mu.Lock()
			c.mem[k] = b
			c.mu.Unlock()
			c.hits.Add(1)
			return b, true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores the payload under k in memory and, when the cache is
// disk-backed, atomically on disk. The caller must not mutate v after
// the call.
func (c *Cache) Put(k Key, v []byte) error {
	c.mu.Lock()
	c.mem[k] = v
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	return WriteFileAtomic(filepath.Join(c.dir, k.String()), v, 0o644)
}

// Stats reports cumulative lookup hits and misses.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// HitRate is hits/(hits+misses), or 0 before the first lookup.
func (c *Cache) HitRate() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Len reports how many payloads the memory tier holds.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}
