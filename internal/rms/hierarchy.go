package rms

import (
	"rmscale/internal/grid"
	"rmscale/internal/sim"
)

// Message kinds for HIERARCHY.
const (
	msgHierReport = iota + 300 // cluster scheduler -> root: average load
)

// hierReport is a cluster's periodic load report to the root.
type hierReport struct {
	cluster int
	avg     float64
}

// hierState is per-scheduler HIERARCHY state; only the root uses the
// cluster-load table.
type hierState struct {
	clusterLoad map[int]float64
	reportedAt  map[int]sim.Time
}

// Hierarchy is an extension beyond the paper's seven models,
// implementing its future-work item (a): a two-level RMS architecture.
// Cluster schedulers place LOCAL jobs themselves and forward REMOTE
// jobs to a root scheduler (the scheduler of cluster 0), which keeps a
// global table of cluster average loads fed by periodic reports and
// routes each forwarded job to the least loaded cluster. The root
// concentrates less state than CENTRAL (per-cluster averages, not
// per-resource loads) and far fewer messages than the flat polling
// models — the classic hierarchical trade.
type Hierarchy struct{}

// NewHierarchy returns the two-level extension model.
func NewHierarchy() *Hierarchy { return &Hierarchy{} }

// Name implements grid.Policy.
func (*Hierarchy) Name() string { return "HIERARCHY" }

// Central implements grid.Policy: the grid keeps its clusters; only the
// routing is centralized.
func (*Hierarchy) Central() bool { return false }

// UsesMiddleware implements grid.Policy.
func (*Hierarchy) UsesMiddleware() bool { return false }

// rootCluster is the cluster whose scheduler acts as the routing root.
const rootCluster = 0

// Attach initializes the root's global table.
func (*Hierarchy) Attach(e *grid.Engine) {
	for c := 0; c < e.Clusters(); c++ {
		e.Scheduler(c).State = &hierState{
			clusterLoad: make(map[int]float64),
			reportedAt:  make(map[int]sim.Time),
		}
	}
}

// OnTick sends the periodic cluster load report to the root.
func (*Hierarchy) OnTick(s *grid.Scheduler) {
	if s.Cluster() == rootCluster {
		return
	}
	s.ExecDecision(len(s.LocalResources()), func() {
		s.SendPolicy(rootCluster, msgHierReport, hierReport{
			cluster: s.Cluster(),
			avg:     s.AvgLocalLoad(),
		})
	})
}

// OnJob places LOCAL jobs locally; REMOTE jobs go up to the root, which
// routes them down to the least loaded cluster.
func (h *Hierarchy) OnJob(s *grid.Scheduler, ctx *grid.JobCtx) {
	switch {
	case ctx.Job.Class == localClass || ctx.Attempts > 0:
		placeLocally(s, ctx)
	case s.Cluster() == rootCluster && ctx.Hops <= 1:
		// At the root (either submitted here or forwarded up): route.
		h.route(s, ctx)
	case ctx.Hops == 0:
		// REMOTE job at a leaf: forward to the root for routing.
		s.TransferJob(ctx, rootCluster)
	default:
		// Routed down (or hop budget spent): execute here.
		placeLocally(s, ctx)
	}
}

// route picks the least loaded cluster from the root's table. The
// root's own cluster competes with its believed local average.
func (*Hierarchy) route(s *grid.Scheduler, ctx *grid.JobCtx) {
	st := s.State.(*hierState)
	s.ExecDecision(len(st.clusterLoad)+1, func() {
		best := rootCluster
		bestLoad := s.AvgLocalLoad()
		for c, l := range st.clusterLoad {
			if l < bestLoad || (l == bestLoad && c < best) {
				best, bestLoad = c, l
			}
		}
		if best == s.Cluster() {
			placeLocally(s, ctx)
			return
		}
		// Optimistically bump the routed cluster's believed average so
		// bursts spread instead of herding.
		rs := float64(len(s.LocalResources()))
		st.clusterLoad[best] += 1 / rs
		s.TransferJob(ctx, best)
	})
}

// OnMessage ingests cluster reports at the root.
func (*Hierarchy) OnMessage(s *grid.Scheduler, m *grid.Message) {
	if m.Kind != msgHierReport || s.Cluster() != rootCluster {
		return
	}
	r := m.Payload.(hierReport)
	st := s.State.(*hierState)
	st.clusterLoad[r.cluster] = r.avg
	st.reportedAt[r.cluster] = s.Now()
}

// OnStatus implements grid.Policy.
func (*Hierarchy) OnStatus(*grid.Scheduler, []int) {}
