package sim

import "testing"

// BenchmarkKernel is the canonical kernel hot-path benchmark: a
// steady-state population of self-rescheduling events, the pattern the
// grid engine drives (tickers, Exec chains, message deliveries keep a
// roughly constant number of events in flight while millions fire).
// allocs/op here is allocs per event processed, the headline number the
// perfbench baseline pins.
func BenchmarkKernel(b *testing.B) {
	const inflight = 512
	b.ReportAllocs()
	k := NewKernel()
	fns := make([]func(), inflight)
	for i := range fns {
		i := i
		fns[i] = func() { k.After(Time(1+i%7), fns[i]) }
	}
	for i, fn := range fns {
		k.Schedule(Time(i%7), fn)
	}
	b.ResetTimer()
	for k.Processed() < uint64(b.N) {
		k.Step()
	}
}

// BenchmarkKernelCancel measures the schedule+cancel path: every event
// that fires schedules a sibling and cancels it again, so half the
// scheduled load is lazily deleted — the superscheduler session pattern
// (timeouts armed and disarmed per protocol round).
func BenchmarkKernelCancel(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	noop := func() {}
	var fn func()
	fn = func() {
		victim := k.After(3, noop)
		k.Cancel(victim)
		k.After(1, fn)
	}
	k.Schedule(0, fn)
	b.ResetTimer()
	for k.Processed() < uint64(b.N) {
		k.Step()
	}
}

// BenchmarkKernelBulk is the cold-start pattern: a large batch scheduled
// up front (job arrivals), then drained in time order.
func BenchmarkKernelBulk(b *testing.B) {
	const batch = 4096
	b.ReportAllocs()
	noop := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		for j := 0; j < batch; j++ {
			k.Schedule(Time(j%401), noop)
		}
		k.Run(Infinity)
	}
}

// BenchmarkTickerCycle measures one full ticker period: the rearm path
// must not allocate once the kernel's free list is warm.
func BenchmarkTickerCycle(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	ticks := 0
	NewTicker(k, 1, func() { ticks++ })
	b.ResetTimer()
	for ticks < b.N {
		k.Step()
	}
}
