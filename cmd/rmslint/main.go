// Command rmslint runs the module's determinism and model-coverage
// analyzers (internal/lint) over the packages matched by its
// arguments, defaulting to ./... — a multichecker in the style of
// golang.org/x/tools/go/analysis/multichecker, built on the standard
// library only.
//
// Usage:
//
//	rmslint [-json FILE] [packages]
//
// Diagnostics print one per line in go vet's file:line:col format.
// With -json FILE, the same findings are additionally written to FILE
// as a machine-readable report (file/line/col, analyzer, message, and
// the suppression anchor when it differs from the position) for CI
// artifacts. The exit status is 1 when any diagnostic is reported, 2
// on driver errors. The //lint:allow, //lint:orderindependent and
// //lint:hotpath directives are documented in DESIGN.md "Determinism
// invariants".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rmscale/internal/lint"
)

func main() {
	jsonPath := flag.String("json", "", "also write findings to this file as a JSON report")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmslint:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(dir, patterns, lint.DefaultConfig)
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmslint:", err)
		os.Exit(2)
	}
	if *jsonPath != "" {
		if werr := writeReport(*jsonPath, findings); werr != nil {
			fmt.Fprintln(os.Stderr, "rmslint:", werr)
			os.Exit(2)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "rmslint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// report is the -json schema: versioned so CI consumers can evolve.
type report struct {
	Version  int            `json:"version"`
	Findings []lint.Finding `json:"findings"`
}

func writeReport(path string, findings []lint.Finding) error {
	if findings == nil {
		findings = []lint.Finding{} // a clean run serializes as [], not null
	}
	b, err := json.MarshalIndent(report{Version: 1, Findings: findings}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
