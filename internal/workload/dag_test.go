package workload

import (
	"testing"
	"testing/quick"

	"rmscale/internal/sim"
)

func TestGenerateDAG(t *testing.T) {
	p := DefaultDAGParams()
	p.ArrivalRate = 2
	p.Horizon = 2000
	jobs, err := GenerateDAG(p, stream("dag"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateDAG(jobs); err != nil {
		t.Fatal(err)
	}
	withDeps := 0
	for _, j := range jobs {
		if len(j.Deps) > 0 {
			withDeps++
		}
		if len(j.Deps) > p.MaxDeps {
			t.Fatalf("job %d has %d deps, max %d", j.ID, len(j.Deps), p.MaxDeps)
		}
	}
	frac := float64(withDeps) / float64(len(jobs))
	if frac < 0.15 || frac > 0.45 {
		t.Fatalf("dependent fraction = %v, want ~%v", frac, p.DepProb)
	}
}

func TestGenerateDAGWindow(t *testing.T) {
	p := DefaultDAGParams()
	p.ArrivalRate = 3
	p.Horizon = 2000
	p.Window = 5
	jobs, err := GenerateDAG(p, stream("dagwin"))
	if err != nil {
		t.Fatal(err)
	}
	idx := map[int]int{}
	for i, j := range jobs {
		idx[j.ID] = i
	}
	for i, j := range jobs {
		for _, d := range j.Deps {
			if i-idx[d] > p.Window {
				t.Fatalf("job %d depends on job %d, %d positions back (window %d)",
					j.ID, d, i-idx[d], p.Window)
			}
		}
	}
}

func TestDAGParamsValidate(t *testing.T) {
	bad := []func(*DAGParams){
		func(p *DAGParams) { p.DepProb = -0.1 },
		func(p *DAGParams) { p.DepProb = 1.1 },
		func(p *DAGParams) { p.MaxDeps = 0 },
		func(p *DAGParams) { p.Window = 0 },
		func(p *DAGParams) { p.ArrivalRate = 0 },
	}
	for i, mut := range bad {
		p := DefaultDAGParams()
		mut(&p)
		if _, err := GenerateDAG(p, stream("x")); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestValidateDAGCatchesCorruption(t *testing.T) {
	jobs := []*Job{
		{ID: 0, Arrival: 0, Runtime: 10},
		{ID: 1, Arrival: 5, Runtime: 10, Deps: []int{0}},
	}
	if err := ValidateDAG(jobs); err != nil {
		t.Fatal(err)
	}
	jobs[1].Deps = []int{99}
	if err := ValidateDAG(jobs); err == nil {
		t.Error("unknown dependency accepted")
	}
	jobs[1].Deps = []int{1}
	if err := ValidateDAG(jobs); err == nil {
		t.Error("self-dependency accepted")
	}
	jobs[0].Deps = []int{1}
	jobs[1].Deps = nil
	if err := ValidateDAG(jobs); err == nil {
		t.Error("forward dependency accepted")
	}
}

// Property: generated DAGs always validate, for arbitrary dep
// probabilities and windows.
func TestGenerateDAGProperty(t *testing.T) {
	src := sim.NewSource(17)
	f := func(prob, win uint8) bool {
		p := DefaultDAGParams()
		p.ArrivalRate = 1
		p.Horizon = 500
		p.DepProb = float64(prob%100) / 100
		p.Window = 1 + int(win%30)
		jobs, err := GenerateDAG(p, src.Stream("prop"))
		if err != nil {
			return false
		}
		return ValidateDAG(jobs) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
