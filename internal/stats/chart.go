package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// ChartOptions sizes the ASCII rendering of a SeriesSet.
type ChartOptions struct {
	// Width and Height are the plot area in characters; zeros pick
	// 64x20.
	Width, Height int
	// LogY plots log10(Y), useful when curves span decades (Figure 4).
	LogY bool
}

func (o ChartOptions) withDefaults() ChartOptions {
	if o.Width <= 0 {
		o.Width = 64
	}
	if o.Width < 16 {
		o.Width = 16
	}
	if o.Height <= 0 {
		o.Height = 20
	}
	if o.Height < 6 {
		o.Height = 6
	}
	return o
}

// seriesMarks assigns one mark per curve, cycling when there are many.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// WriteChart renders the set as an ASCII chart: one mark per series,
// linear interpolation between points, a legend, and axis labels. It is
// the terminal stand-in for the paper's figures.
func (ss *SeriesSet) WriteChart(w io.Writer, opts ChartOptions) error {
	opts = opts.withDefaults()
	if len(ss.Series) == 0 {
		_, err := fmt.Fprintf(w, "%s\n(no series)\n", ss.Title)
		return err
	}
	// Bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	tr := func(y float64) float64 {
		if opts.LogY {
			if y <= 0 {
				return math.NaN()
			}
			return math.Log10(y)
		}
		return y
	}
	for _, s := range ss.Series {
		for i := range s.X {
			x, y := s.X[i], tr(s.Y[i])
			if math.IsNaN(y) {
				continue
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if math.IsInf(minX, 1) {
		_, err := fmt.Fprintf(w, "%s\n(no plottable points)\n", ss.Title)
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - minX) / (maxX - minX) * float64(opts.Width-1)))
		return clampInt(c, 0, opts.Width-1)
	}
	row := func(y float64) int {
		r := int(math.Round((y - minY) / (maxY - minY) * float64(opts.Height-1)))
		return clampInt(opts.Height-1-r, 0, opts.Height-1)
	}

	for si, s := range ss.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		// Interpolate along segments so curves read as lines.
		for i := 0; i+1 < len(s.X); i++ {
			y0, y1 := tr(s.Y[i]), tr(s.Y[i+1])
			if math.IsNaN(y0) || math.IsNaN(y1) {
				continue
			}
			c0, c1 := col(s.X[i]), col(s.X[i+1])
			steps := c1 - c0
			if steps < 1 {
				steps = 1
			}
			for t := 0; t <= steps; t++ {
				frac := float64(t) / float64(steps)
				x := c0 + t
				y := row(y0 + (y1-y0)*frac)
				grid[y][clampInt(x, 0, opts.Width-1)] = mark
			}
		}
		if len(s.X) == 1 && !math.IsNaN(tr(s.Y[0])) {
			grid[row(tr(s.Y[0]))][col(s.X[0])] = mark
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", ss.Title)
	yLabel := ss.YLabel
	if opts.LogY {
		yLabel = "log10 " + yLabel
	}
	top, bottom := maxY, minY
	fmt.Fprintf(&b, "%10.3g |%s\n", top, string(grid[0]))
	for r := 1; r < opts.Height-1; r++ {
		fmt.Fprintf(&b, "%10s |%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%10.3g |%s\n", bottom, string(grid[opts.Height-1]))
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", opts.Width))
	fmt.Fprintf(&b, "%10s  %-*g%*g\n", "", opts.Width/2, minX, opts.Width-opts.Width/2, maxX)
	fmt.Fprintf(&b, "%10s  x: %s, y: %s\n", "", ss.XLabel, yLabel)
	b.WriteString("            legend:")
	for si, s := range ss.Series {
		fmt.Fprintf(&b, " %c=%s", seriesMarks[si%len(seriesMarks)], s.Name)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
