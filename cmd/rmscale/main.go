// Command rmscale runs the paper's scalability experiments and prints
// the figures and tables of the evaluation section.
//
// Usage:
//
//	rmscale [flags] <command>
//
// Commands:
//
//	case1 .. case4   run one experiment case (Figures 2-5; case3 also
//	                 emits Figures 6 and 7)
//	all              run every case
//	ablation         run the ablation studies (suppression, estimator
//	                 layer, middleware, tuner, faults)
//	tables           print Tables 1-5 (the experiment configurations)
//	bench            run the benchmark-regression harness
//	                 (internal/perfbench) and print its JSON report;
//	                 with -check FILE, also gate the report against that
//	                 committed baseline and exit non-zero on regression
//
// Flags:
//
//	-fidelity smoke|quick|full   runtime budget (default quick)
//	-seed N                      master random seed (default 1)
//	-format table|chart|csv|json output format (default table)
//	-out DIR                     also save each figure as CSV+JSON files
//	-j N                         worker-pool size (default GOMAXPROCS)
//	-par-workers N               in-run parallelism cap: each simulation
//	                             may execute partitioned event windows
//	                             on up to N workers where its partition
//	                             plan proves that byte-identical to
//	                             serial execution (default 0 = serial);
//	                             composes with -j, which parallelises
//	                             across simulations
//	-resume DIR                  checkpoint directory: journal completed
//	                             (model, k) points there, cache
//	                             simulations on disk, and resume an
//	                             interrupted run with the same
//	                             fidelity/seed from what it holds
//	-v                           log tuning progress per (model, k) and
//	                             runner job progress
//	-faults                      degraded mode: re-run the case under a
//	                             fixed RMS fault load (scheduler and
//	                             estimator crashes, message loss, link
//	                             outages) and emit the scalability-
//	                             under-churn comparison
//	-mtbf F                      with -faults: also crash resources with
//	                             this mean time between failures, 0=off
//	-repair F                    with -faults: resource repair time
//	                             (default 200)
//	-loss F                      with -faults: status update loss
//	                             probability
//	-chaos N                     no command: sweep N random fault
//	                             schedules across all RMS models under
//	                             the runtime invariant auditor; replay
//	                             each violation to confirm deterministic
//	                             reproduction, shrink it to a minimal
//	                             reproducer (written to -out as JSON)
//	                             and exit non-zero
//	-chaos-replay FILE           no command: re-run one chaos reproducer
//	                             JSON file and report its audit outcome
//
// Results are deterministic in -seed: serial, parallel and
// cache-warm/resumed executions of the same case produce identical
// tables. A chaos sweep is likewise fully reproducible from
// (-seed, -chaos N).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rmscale"
	"rmscale/internal/perfbench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rmscale:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rmscale", flag.ContinueOnError)
	fidelity := fs.String("fidelity", "quick", "smoke, quick or full")
	seed := fs.Int64("seed", 1, "master random seed")
	format := fs.String("format", "table", "table, chart, csv or json")
	outDir := fs.String("out", "", "also write each figure as CSV and JSON into this directory")
	workers := fs.Int("j", 0, "worker-pool size; 0 picks GOMAXPROCS")
	parWorkers := fs.Int("par-workers", 0, "in-run parallelism cap per simulation (partitioned event windows); 0 or 1 runs serially")
	resumeDir := fs.String("resume", "", "checkpoint directory for journaling, disk caching and resuming")
	verbose := fs.Bool("v", false, "log tuning progress")
	faults := fs.Bool("faults", false, "degraded mode: re-run the case under the churn fault load")
	mtbf := fs.Float64("mtbf", 0, "with -faults: resource mean time between failures (0 disables)")
	repair := fs.Float64("repair", 200, "with -faults: resource repair time")
	loss := fs.Float64("loss", 0, "with -faults: status update loss probability")
	chaosN := fs.Int("chaos", 0, "sweep this many random fault schedules under the invariant auditor")
	chaosReplay := fs.String("chaos-replay", "", "re-run one chaos reproducer JSON file")
	benchBaseline := fs.String("check", "", "with bench: baseline report to gate against")
	benchTol := fs.Float64("tolerance", 0.10, "with bench -check: allowed relative regression on max- and min-gated metrics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("-j must be >= 0, got %d", *workers)
	}
	if *parWorkers < 0 {
		return fmt.Errorf("-par-workers must be >= 0, got %d", *parWorkers)
	}
	if (*mtbf != 0 || *loss != 0) && !*faults {
		return fmt.Errorf("-mtbf and -loss need -faults: they extend the degraded-mode fault load")
	}
	if *chaosN > 0 || *chaosReplay != "" {
		if fs.NArg() != 0 {
			return fmt.Errorf("-chaos and -chaos-replay take no command")
		}
		if *chaosReplay != "" {
			return replayChaos(*chaosReplay, out)
		}
		return runChaos(*chaosN, *seed, *workers, *outDir, *verbose, out)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("need exactly one command: case1, case2, case3, case4, all, ablation, tables or bench")
	}
	cmd := fs.Arg(0)
	if *benchBaseline != "" && cmd != "bench" {
		return fmt.Errorf("-check needs the bench command")
	}

	if cmd == "tables" {
		return printTables(out)
	}
	if cmd == "bench" {
		return runBench(*benchBaseline, *benchTol, out)
	}

	fid, err := rmscale.ParseFidelity(*fidelity)
	if err != nil {
		return err
	}
	spec := rmscale.RunSpec{
		Fidelity:   fid,
		Seed:       *seed,
		Workers:    *workers,
		ParWorkers: *parWorkers,
		Dir:        *resumeDir,
	}
	if *verbose {
		spec.Progress = func(model string, p rmscale.Point) {
			fmt.Fprintf(os.Stderr, "tuned %-8s k=%d G=%.1f E=%.3f feasible=%v evals=%d\n",
				model, p.K, p.G, p.Obs.Efficiency, p.Feasible, p.Evals)
		}
		spec.Log = os.Stderr
	}

	emit := func(ss *rmscale.SeriesSet) error {
		if *outDir != "" {
			if err := saveFigure(*outDir, ss); err != nil {
				return err
			}
		}
		switch *format {
		case "csv":
			return ss.WriteCSV(out)
		case "json":
			return ss.WriteJSON(out)
		case "chart":
			return ss.WriteChart(out, rmscale.ChartOptions{})
		case "table":
			return ss.WriteTable(out)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}

	emitCase := func(r *rmscale.CaseResult) error {
		if err := emit(r.Figure()); err != nil {
			return err
		}
		if r.Case == 3 {
			if err := emit(r.ThroughputFigure()); err != nil {
				return err
			}
			if err := emit(r.ResponseFigure()); err != nil {
				return err
			}
		}
		ranked := r.Figure().RankByFinalY()
		fmt.Fprintf(out, "most to least scalable: %v\n", ranked)
		for _, name := range r.Order {
			m, ok := r.Measurements[name]
			if !ok {
				continue
			}
			var infeasible, saturated []int
			for _, p := range m.Points {
				if !p.Feasible {
					infeasible = append(infeasible, p.K)
				}
				if p.Obs.Saturated {
					saturated = append(saturated, p.K)
				}
			}
			if len(infeasible) > 0 || len(saturated) > 0 {
				fmt.Fprintf(out, "  %-8s", name)
				if len(infeasible) > 0 {
					fmt.Fprintf(out, " efficiency band unreachable at k=%v", infeasible)
				}
				if len(saturated) > 0 {
					fmt.Fprintf(out, " RMS node saturated at k=%v", saturated)
				}
				fmt.Fprintln(out)
			}
		}
		return nil
	}

	// The degraded-mode fault load: the fixed churn preset, optionally
	// extended with gridsim's resource-level faults.
	churnModel := rmscale.ChurnFaults()
	churnModel.ResourceMTBF = *mtbf
	churnModel.RepairTime = *repair
	churnModel.UpdateLossProb = *loss
	emitChurn := func(r *rmscale.ChurnResult) error {
		fig, err := r.PsiFigure()
		if err != nil {
			return err
		}
		if err := emit(fig); err != nil {
			return err
		}
		tbl, err := r.Table()
		if err != nil {
			return err
		}
		_, err = fmt.Fprint(out, tbl)
		return err
	}

	switch cmd {
	case "case1", "case2", "case3", "case4":
		id := int(cmd[4] - '0')
		if *faults {
			r, err := rmscale.RunChurnSpec(id, churnModel, spec)
			if err != nil {
				return err
			}
			return emitChurn(r)
		}
		r, err := rmscale.RunCaseSpec(id, spec)
		if err != nil {
			return err
		}
		return emitCase(r)
	case "all":
		if *faults {
			for id := 1; id <= 4; id++ {
				r, err := rmscale.RunChurnSpec(id, churnModel, spec)
				if err != nil {
					return err
				}
				if err := emitChurn(r); err != nil {
					return err
				}
				fmt.Fprintln(out)
			}
			return nil
		}
		rs, err := rmscale.RunAllSpec(spec)
		if err != nil {
			return err
		}
		for _, r := range rs {
			if err := emitCase(r); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	case "ablation":
		rs, err := rmscale.RunAblations(fid, *seed)
		if err != nil {
			return err
		}
		for _, r := range rs {
			fmt.Fprintln(out, r.Table())
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// runBench runs the benchmark-regression harness and prints its JSON
// report. With a baseline it additionally gates the gated metrics
// (event counts exactly, allocation counts within the tolerance) and
// fails on any violation — wall-clock metrics are never gated, so the
// check is stable across machines.
func runBench(baseline string, tolerance float64, out io.Writer) error {
	rep, err := perfbench.Run()
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(out); err != nil {
		return err
	}
	if baseline == "" {
		return nil
	}
	f, err := os.Open(baseline)
	if err != nil {
		return err
	}
	base, err := perfbench.ReadReport(f)
	f.Close()
	if err != nil {
		return err
	}
	if bad := perfbench.Compare(base, rep, tolerance); len(bad) > 0 {
		for _, v := range bad {
			fmt.Fprintln(os.Stderr, "bench:", v)
		}
		if base.Go != rep.Go {
			fmt.Fprintf(os.Stderr, "bench: note: baseline was recorded with %s, this run uses %s; allocation counts shift across toolchains — refresh the baseline (make bench) if the code is unchanged\n", base.Go, rep.Go)
		}
		return fmt.Errorf("bench: %d metric(s) regressed against %s", len(bad), baseline)
	}
	fmt.Fprintf(os.Stderr, "bench: all gated metrics within budget of %s\n", baseline)
	return nil
}

// runChaos sweeps n random fault schedules across all RMS models under
// the runtime invariant auditor, shrinking every violation to a
// minimal reproducer. Any violation makes the sweep fail, so a CI step
// invoking it turns invariant drift into a red build.
func runChaos(n int, seed int64, workers int, outDir string, verbose bool, out io.Writer) error {
	opts := rmscale.ChaosOptions{
		Schedules: n,
		Seed:      seed,
		Workers:   workers,
		OutDir:    outDir,
	}
	if verbose {
		opts.Log = os.Stderr
	}
	res, err := rmscale.ChaosSweep(opts)
	if err != nil {
		return err
	}
	if res.Clean() {
		fmt.Fprintf(out, "chaos: %d schedules swept, no invariant violations\n", res.Ran)
		return nil
	}
	for _, f := range res.Findings {
		fmt.Fprintf(out, "chaos: %s (%s) violated %v, fingerprint %s, deterministic=%v\n",
			f.Schedule.Name, f.Schedule.Model, f.Report.Kinds, f.Report.Fingerprint, f.Deterministic)
		fmt.Fprintf(out, "chaos: shrunk %d -> %d scripted events in %d runs\n",
			f.Schedule.Events(), f.Shrunk.Events(), f.ShrinkEvals)
		for _, v := range f.Report.Violations {
			fmt.Fprintf(out, "  %s\n", v)
		}
		if f.File != "" {
			fmt.Fprintf(out, "chaos: reproducer written to %s\n", f.File)
		}
	}
	return fmt.Errorf("chaos: %d of %d schedules violated runtime invariants", len(res.Findings), res.Ran)
}

// replayChaos re-runs one reproducer file and reports its audit
// outcome; a still-violating reproducer exits non-zero.
func replayChaos(path string, out io.Writer) error {
	s, err := rmscale.ReadChaosSchedule(path)
	if err != nil {
		return err
	}
	r, err := rmscale.RunChaosSchedule(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "chaos: %s (%s): %d checks, %d violation(s)\n",
		s.Name, s.Model, r.Checks, len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(out, "  %s\n", v)
	}
	if r.Violating() {
		fmt.Fprintf(out, "chaos: kinds %v, fingerprint %s\n", r.Kinds, r.Fingerprint)
		return fmt.Errorf("chaos: %s still violates %v", s.Name, r.Kinds)
	}
	return nil
}

// saveFigure writes one figure as CSV and JSON files named after its
// title. Each file is written atomically (temp file + rename) so an
// interrupted run never leaves a truncated result file behind.
func saveFigure(dir string, ss *rmscale.SeriesSet) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, ss.Title)
	slug = strings.Trim(slug, "-")
	for len(slug) > 0 && strings.Contains(slug, "--") {
		slug = strings.ReplaceAll(slug, "--", "-")
	}
	var csvBuf bytes.Buffer
	if err := ss.WriteCSV(&csvBuf); err != nil {
		return err
	}
	if err := rmscale.WriteFileAtomic(filepath.Join(dir, slug+".csv"), csvBuf.Bytes(), 0o644); err != nil {
		return err
	}
	var jsonBuf bytes.Buffer
	if err := ss.WriteJSON(&jsonBuf); err != nil {
		return err
	}
	return rmscale.WriteFileAtomic(filepath.Join(dir, slug+".json"), jsonBuf.Bytes(), 0o644)
}

func printTables(out io.Writer) error {
	if err := rmscale.ModelRoster(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	if err := rmscale.PaperConstantsTable(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return rmscale.ScalingTables(out)
}
