package scale

import (
	"fmt"
	"math"

	"rmscale/internal/anneal"
)

// MeasureSpec configures the paper's four-step measurement procedure
// (Figure 1's flowchart):
//
//	Step 1: choose a feasible efficiency value to hold (Band).
//	Step 2: scale the RMS or the RP along the scaling path (Ks).
//	Step 3: tune the scaling enablers by simulated annealing so the
//	        overhead G(k) is minimal while efficiency stays at the
//	        chosen value.
//	Step 4: compute the scalability of the RMS from the slope of G(k).
type MeasureSpec struct {
	RMS      string
	Ks       []int
	Enablers []Enabler
	Band     Band
	Anneal   anneal.Options
	// Tuner selects the optimizer; the zero value is the paper's
	// simulated annealing. TunerGrid is the ablation baseline; its
	// per-dimension resolution derives from the annealing iteration
	// budget.
	Tuner Tuner
	// WarmStart seeds each scale factor's search with the previous
	// factor's tuned enablers, the natural continuation along the
	// scaling path. The base factor starts from Enabler.Init.
	WarmStart bool
	// PenaltyWeight converts band violations into annealing energy;
	// zero picks a weight that dominates typical overhead magnitudes.
	PenaltyWeight float64
	// Progress, when non-nil, receives each tuned point as it lands —
	// including points adopted from Resume, so a resumed run logs the
	// same sequence as the original.
	Progress func(Point)
	// Resume seeds the measurement with previously tuned points, e.g.
	// from a checkpoint journal. The points must align with the
	// leading scale factors of Ks; they are adopted verbatim without
	// re-tuning and warm-starting continues from the last adopted
	// point, so a resumed measurement is byte-identical to an
	// uninterrupted one.
	Resume []Point
	// EvalCache, when non-nil, supplies the tuner's evaluation memo at
	// each scale factor (the runner's persistent content-addressed
	// cache), replacing the annealer's private per-search map.
	EvalCache func(k int) anneal.EvalCache
}

// Validate reports the first specification error.
func (s MeasureSpec) Validate() error {
	if len(s.Ks) == 0 {
		return fmt.Errorf("scale: no scale factors")
	}
	last := 0
	for _, k := range s.Ks {
		if k < 1 {
			return fmt.Errorf("scale: scale factor %d < 1", k)
		}
		if k <= last {
			return fmt.Errorf("scale: scale factors must be strictly increasing")
		}
		last = k
	}
	if len(s.Enablers) == 0 {
		return fmt.Errorf("scale: no enablers to tune")
	}
	if len(s.Resume) > len(s.Ks) {
		return fmt.Errorf("scale: %d resume points for %d scale factors", len(s.Resume), len(s.Ks))
	}
	for i, p := range s.Resume {
		if p.K != s.Ks[i] {
			return fmt.Errorf("scale: resume point %d has k=%d, want k=%d", i, p.K, s.Ks[i])
		}
	}
	for _, e := range s.Enablers {
		if err := e.Validate(); err != nil {
			return err
		}
	}
	return s.Band.Validate()
}

// Measure runs the measurement procedure for one RMS against the given
// evaluator and returns the tuned G(k) curve with its derived
// scalability quantities.
func Measure(ev Evaluator, spec MeasureSpec) (*Measurement, error) {
	if ev == nil {
		return nil, fmt.Errorf("scale: nil evaluator")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := &Measurement{RMS: spec.RMS, Enablers: spec.Enablers, Band: spec.Band}

	dims := make([]anneal.Dim, len(spec.Enablers))
	start := make([]float64, len(spec.Enablers))
	for i, e := range spec.Enablers {
		dims[i] = e.dim()
		start[i] = e.Init
	}

	for i, k := range spec.Ks {
		if i < len(spec.Resume) {
			// Adopt the checkpointed point without re-tuning; the
			// warm-start chain continues from its tuned enablers.
			p := spec.Resume[i]
			m.Points = append(m.Points, p)
			if spec.Progress != nil {
				spec.Progress(p)
			}
			if spec.WarmStart {
				start = append([]float64(nil), p.Enablers...)
			}
			continue
		}
		k := k
		var evalErr error
		obj := func(x []float64) anneal.Result {
			obs, err := ev.Evaluate(k, x)
			if err != nil {
				evalErr = err
				return anneal.Result{Cost: 0, Penalty: 1e18, Feasible: false}
			}
			weight := spec.PenaltyWeight
			if weight == 0 {
				// Dominant enough that a 1% efficiency shortfall
				// outweighs halving the overhead.
				weight = 100 * (obs.G + obs.F + 1)
			}
			pen := spec.Band.Penalty(obs.Efficiency) * weight
			return anneal.Result{
				Cost:     obs.G,
				Penalty:  pen,
				Feasible: spec.Band.Feasible(obs.Efficiency),
				Aux:      obs,
			}
		}
		var out anneal.Outcome
		var err error
		switch spec.Tuner {
		case TunerGrid:
			// Match the annealer's evaluation budget per point:
			// points^dims ~= iters.
			points := int(math.Round(math.Pow(float64(max(spec.Anneal.Iters, 8)),
				1/float64(len(dims)))))
			out, err = gridSearch(dims, obj, points)
		default:
			o := spec.Anneal
			o.Seed = spec.Anneal.Seed + int64(k)*7919
			if spec.EvalCache != nil {
				o.Cache = spec.EvalCache(k)
			}
			out, err = anneal.Minimize(dims, start, obj, o)
		}
		if err != nil {
			return nil, fmt.Errorf("scale: tuning %s at k=%d: %w", spec.RMS, k, err)
		}
		if evalErr != nil {
			return nil, fmt.Errorf("scale: evaluating %s at k=%d: %w", spec.RMS, k, evalErr)
		}
		obs := out.Result.Aux.(Observation)
		p := Point{
			K:        k,
			G:        obs.G,
			Enablers: out.X,
			Obs:      obs,
			Feasible: out.Result.Feasible,
			InBand:   spec.Band.Contains(obs.Efficiency),
			Evals:    out.Evals,
		}
		m.Points = append(m.Points, p)
		if spec.Progress != nil {
			spec.Progress(p)
		}
		if spec.WarmStart {
			start = append([]float64(nil), out.X...)
		}
	}
	return m, nil
}
