// Command rmscaled is the long-lived experiment service: a daemon
// serving the repository's simulations and experiment cases to many
// concurrent clients over HTTP/JSON, with content-addressed dedup, a
// shared result store, admission control and journal-checkpointed
// restart. The client subcommands talk to a running daemon.
//
// Usage:
//
//	rmscaled serve   [-addr :8080] [-dir DIR] [-shards N] [-queue N] [-quiet]
//	rmscaled submit  [-addr HOST] [-wait] -kind sim -model M [-seed N] [-horizon F]
//	rmscaled submit  [-addr HOST] [-wait] -kind case|churn -case 1..4 -fidelity F [-seed N]
//	rmscaled status  [-addr HOST] ID
//	rmscaled fetch   [-addr HOST] ID
//	rmscaled loadtest [-objects N] [-distinct N] [-clients N] [-seed N]
//
// serve runs the daemon until SIGINT/SIGTERM, then drains gracefully:
// in-flight experiments finish, the queued backlog stays checkpointed
// in -dir's journal, and the next serve over the same -dir resumes it.
//
// submit posts one experiment spec and prints the daemon's status
// response — the experiment ID is the spec's deterministic content
// address, so resubmitting an already-known spec joins the existing
// work instead of rerunning it. With -wait, submit streams status
// updates until the experiment is terminal and then fetches the
// result.
//
// loadtest needs no daemon: it starts an in-process one and drives the
// scale-qualifying load iteration from internal/service/loadgen
// against it, printing the metrics as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"rmscale/internal/service"
	"rmscale/internal/service/loadgen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "serve":
		err = serveCmd(args)
	case "submit":
		err = submitCmd(args)
	case "status":
		err = queryCmd(args, "")
	case "fetch":
		err = queryCmd(args, "/result")
	case "loadtest":
		err = loadtestCmd(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmscaled:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: rmscaled <serve|submit|status|fetch|loadtest> [flags]
  serve     run the daemon (SIGTERM drains gracefully; -dir resumes)
  submit    submit an experiment spec to a running daemon
  status    print an experiment's status
  fetch     print an experiment's stored result
  loadtest  run the in-process load iteration and print its metrics
run 'rmscaled <command> -h' for the command's flags`)
}

// serveCmd runs the daemon until SIGINT/SIGTERM, then drains.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	dir := fs.String("dir", "", "service directory (journal, result store, run dirs); empty = ephemeral")
	shards := fs.Int("shards", 2, "worker shards executing experiments concurrently")
	queue := fs.Int("queue", 256, "admission queue capacity (full = HTTP 429)")
	workers := fs.Int("j", 1, "runner workers inside one case/churn experiment")
	quiet := fs.Bool("quiet", false, "suppress the structured event/request log")
	fs.Parse(args)

	var logw io.Writer = os.Stderr
	if *quiet {
		logw = nil
	}
	d, err := service.New(service.Config{
		Dir: *dir, Shards: *shards, QueueCap: *queue, CaseWorkers: *workers, Log: logw,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		d.Close()
		return err
	}
	srv := &http.Server{Handler: service.NewServer(d).Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "rmscaled: serving on %s (dir=%q shards=%d queue=%d)\n",
		ln.Addr(), *dir, *shards, *queue)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "rmscaled: %v: draining (in-flight work finishes, backlog stays journaled)\n", sig)
		srv.Close() // stop accepting requests, then drain the daemon
		d.Drain()
		return d.Close()
	case err := <-errc:
		d.Close()
		return err
	}
}

// submitCmd builds a spec from flags, posts it, and optionally waits.
func submitCmd(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	kind := fs.String("kind", "sim", "spec kind: sim, case or churn")
	model := fs.String("model", "", "sim: RMS model name")
	seed := fs.Int64("seed", 1, "master random seed")
	horizon := fs.Float64("horizon", 0, "sim: simulated duration override (0 = default)")
	caseN := fs.Int("case", 0, "case/churn: experiment case 1..4")
	fidelity := fs.String("fidelity", "", "case/churn: smoke, quick or full")
	wait := fs.Bool("wait", false, "stream status until terminal, then fetch the result")
	client := fs.String("client", "rmscaled-cli", "client identity for fairness accounting")
	fs.Parse(args)

	spec := service.ExperimentSpec{
		Kind: *kind, Seed: *seed, Model: *model, Horizon: *horizon,
		Case: *caseN, Fidelity: *fidelity,
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	payload, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, strings.TrimRight(*addr, "/")+"/v1/experiments",
		strings.NewReader(string(payload)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Rmscale-Client", *client)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var st service.Status
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("decoding status: %w", err)
	}
	if !*wait {
		os.Stdout.Write(body)
		return nil
	}
	if err := streamUntilDone(*addr, st.ID, os.Stderr); err != nil {
		return err
	}
	return fetchTo(*addr, st.ID, os.Stdout)
}

// streamUntilDone follows the experiment's stream, echoing each status
// line, and fails if the experiment does.
func streamUntilDone(addr, id string, w io.Writer) error {
	resp, err := http.Get(strings.TrimRight(addr, "/") + "/v1/experiments/" + id + "/stream")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stream: HTTP %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var st service.Status
	for {
		if err := dec.Decode(&st); err != nil {
			return fmt.Errorf("stream: %w", err)
		}
		b, _ := json.Marshal(st)
		fmt.Fprintf(w, "%s\n", b)
		if st.State.Terminal() {
			break
		}
	}
	if st.State != service.StateDone {
		return fmt.Errorf("experiment %s failed: %s", id, st.Error)
	}
	return nil
}

func fetchTo(addr, id string, w io.Writer) error {
	resp, err := http.Get(strings.TrimRight(addr, "/") + "/v1/experiments/" + id + "/result")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("fetch %s: HTTP %d: %s", id, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// queryCmd implements status (path "") and fetch (path "/result").
func queryCmd(args []string, path string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one experiment ID, got %d args", fs.NArg())
	}
	id := fs.Arg(0)
	if path == "/result" {
		return fetchTo(*addr, id, os.Stdout)
	}
	resp, err := http.Get(strings.TrimRight(*addr, "/") + "/v1/experiments/" + id)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s: HTTP %d: %s", id, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	os.Stdout.Write(body)
	return nil
}

// loadtestCmd runs one in-process load iteration and prints Metrics.
func loadtestCmd(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	objects := fs.Int("objects", 1000, "experiment objects submitted per iteration")
	distinct := fs.Int("distinct", 0, "distinct specs among the objects (0 = objects/8)")
	clients := fs.Int("clients", 8, "concurrent load clients")
	seed := fs.Int64("seed", 1, "spec seed base")
	horizon := fs.Float64("horizon", 250, "sim horizon per object")
	shards := fs.Int("shards", 2, "daemon worker shards")
	queue := fs.Int("queue", 256, "daemon queue capacity")
	dir := fs.String("dir", "", "daemon service directory (empty = temp dir)")
	verbose := fs.Bool("v", false, "print the harness progress line to stderr")
	fs.Parse(args)

	sdir := *dir
	if sdir == "" {
		tmp, err := os.MkdirTemp("", "rmscaled-loadtest-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		sdir = tmp
	}
	opts := loadgen.Options{
		Objects: *objects, Distinct: *distinct, Clients: *clients,
		Seed: *seed, Horizon: *horizon,
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	m, err := loadgen.RunInProcess(opts, service.Config{
		Dir: sdir, Shards: *shards, QueueCap: *queue,
	})
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}
