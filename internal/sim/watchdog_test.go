package sim

import (
	"strings"
	"testing"
)

// A self-rescheduling zero-delay event is the classic DES livelock: the
// clock never advances, the FEL never drains. The watchdog must stop
// the run with a descriptive error instead of spinning to MaxEvents.
func TestWatchdogStopsZeroDelayLoop(t *testing.T) {
	k := NewKernel()
	k.StallEvents = 100
	var spin func()
	spin = func() { k.After(0, spin) }
	k.Schedule(5, spin)
	n := k.Run(1000)
	if !k.Stalled {
		t.Fatal("kernel did not detect the zero-delay loop")
	}
	if k.Now() != 5 {
		t.Fatalf("stalled at t=%v, want 5", k.Now())
	}
	// The offending event stays pending (visible to diagnostics) and is
	// not counted as processed.
	if k.Pending() == 0 {
		t.Fatal("stall consumed the pending offender")
	}
	if n > 101 {
		t.Fatalf("processed %d events before stalling, want <= StallEvents+1", n)
	}
	err := k.Err()
	if err == nil {
		t.Fatal("stalled kernel reports no error")
	}
	if !strings.Contains(err.Error(), "no progress") || !strings.Contains(err.Error(), "t=5") {
		t.Fatalf("unhelpful stall error: %v", err)
	}
}

func TestWatchdogToleratesBurstsBelowThreshold(t *testing.T) {
	k := NewKernel()
	k.StallEvents = 100
	fired := 0
	// 99 simultaneous events at each of several timestamps: legal
	// same-time bursts, never a stall.
	for _, at := range []Time{1, 2, 3} {
		for i := 0; i < 99; i++ {
			k.Schedule(at, func() { fired++ })
		}
	}
	n := k.Run(10)
	if k.Stalled {
		t.Fatal("watchdog tripped on legal same-time bursts")
	}
	if n != 297 || fired != 297 {
		t.Fatalf("processed %d events, fired %d, want 297", n, fired)
	}
	if err := k.Err(); err != nil {
		t.Fatalf("healthy run reports error: %v", err)
	}
}

func TestWatchdogDisabledByDefault(t *testing.T) {
	k := NewKernel()
	count := 0
	var spin func()
	spin = func() {
		count++
		if count < 5000 {
			k.After(0, spin)
		}
	}
	k.Schedule(1, spin)
	k.Run(10)
	if k.Stalled {
		t.Fatal("zero StallEvents must disable the watchdog")
	}
	if count != 5000 {
		t.Fatalf("processed %d same-time events, want 5000", count)
	}
}

func TestNextEventTimes(t *testing.T) {
	k := NewKernel()
	for _, at := range []Time{9, 3, 7, 1, 5} {
		k.Schedule(at, func() {})
	}
	got := k.NextEventTimes(3)
	want := []Time{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("NextEventTimes(3) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NextEventTimes(3) = %v, want %v", got, want)
		}
	}
	if all := k.NextEventTimes(100); len(all) != 5 {
		t.Fatalf("NextEventTimes(100) returned %d times, want 5", len(all))
	}
}
