package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"rmscale/internal/lint"
	"rmscale/internal/lint/analysis"
	"rmscale/internal/lint/linttest"
)

func TestNoWallClock(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoWallClock(), "nowallclock")
}

func TestNoGlobalRand(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoGlobalRand(), "noglobalrand")
}

func TestMapIterOrder(t *testing.T) {
	linttest.Run(t, "testdata", lint.MapIterOrder(), "mapiterorder")
}

func TestNoKernelGoroutines(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoKernelGoroutines(), "nokernelgoroutines")
}

func TestRMSExhaustive(t *testing.T) {
	a := lint.RMSExhaustive(lint.EnumSpec{
		PkgPath:  "modelenum",
		TypeName: "ID",
		Constants: []string{
			"Central", "Lowest", "Reserve", "Auction",
			"SenderInit", "ReceiverInit", "Symmetric",
		},
	})
	linttest.Run(t, "testdata", a, "modelenum", "rmsexhaustive")
}

// TestMalformedDirectives checks that broken //lint: markers are
// themselves reported: an unexplained or mistargeted exception must
// not silently suppress anything.
func TestMalformedDirectives(t *testing.T) {
	const src = `package p

func f() {
	//lint:allow nowallclock
	_ = 1
	//lint:allow bogusanalyzer because reasons
	_ = 2
	//lint:frobnicate whatever
	_ = 3
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	known := lint.KnownAnalyzers(lint.DefaultConfig)
	out := lint.ApplyDirectives(fset, []*ast.File{f}, known, nil)
	if len(out) != 3 {
		t.Fatalf("got %d directive diagnostics, want 3: %+v", len(out), out)
	}
	for _, want := range []string{"needs a reason", "unknown analyzer bogusanalyzer", "unknown //lint: directive frobnicate"} {
		found := false
		for _, d := range out {
			if d.Analyzer == "lintdirective" && strings.Contains(d.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no lintdirective diagnostic mentions %q in %+v", want, out)
		}
	}
}

// TestSuppressionCoversBothAnchors checks that a loop-level
// //lint:orderindependent directive silences diagnostics reported
// inside the loop body (via the suppression anchor), which is how the
// production annotations in grid/estimator.go and runner/report.go
// work.
func TestSuppressionAnchor(t *testing.T) {
	fset := token.NewFileSet()
	const src = `package p

func f(m map[string]int, out func(string)) {
	//lint:orderindependent the sink deduplicates
	for k := range m {
		out(k)
	}
}
`
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	known := lint.KnownAnalyzers(lint.DefaultConfig)
	// A diagnostic inside the loop body (line 6), anchored on the loop
	// header (line 5), must be suppressed by the directive on line 4.
	bodyPos := posOnLine(fset, f, 6)
	loopPos := posOnLine(fset, f, 5)
	d := analysis.Diagnostic{Pos: bodyPos, SuppressPos: loopPos, Message: "calls out", Analyzer: "mapiterorder"}
	if out := lint.ApplyDirectives(fset, []*ast.File{f}, known, []analysis.Diagnostic{d}); len(out) != 0 {
		t.Fatalf("anchored diagnostic not suppressed: %+v", out)
	}
	// Without the anchor the body diagnostic survives.
	d.SuppressPos = token.NoPos
	if out := lint.ApplyDirectives(fset, []*ast.File{f}, known, []analysis.Diagnostic{d}); len(out) != 1 {
		t.Fatalf("unanchored diagnostic unexpectedly suppressed")
	}
}

// posOnLine returns some token position on the given line.
func posOnLine(fset *token.FileSet, f *ast.File, line int) token.Pos {
	var found token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || found != token.NoPos {
			return false
		}
		if fset.Position(n.Pos()).Line == line {
			found = n.Pos()
			return false
		}
		return true
	})
	return found
}
