package service

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestRestartReexecutesCorruptResult pins the crash-with-corruption
// story end to end: a daemon restarting over a store entry whose bytes
// were damaged on disk quarantines it, re-executes the journaled spec,
// and serves a byte-identical result — the content address guarantees
// the recomputation.
func TestRestartReexecutesCorruptResult(t *testing.T) {
	dir := t.TempDir()
	d1, err := New(Config{Dir: dir, Shards: 1, Exec: fakeExec})
	if err != nil {
		t.Fatal(err)
	}
	spec := ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 7}
	st, err := d1.Submit(spec, "c")
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, d1, st.ID)
	want, ok := d1.Result(st.ID)
	if !ok {
		t.Fatal("result missing before the crash")
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	// Damage the stored payload (bit rot, torn write) but leave its
	// sidecar: the restart must detect the mismatch.
	path := filepath.Join(dir, "results", st.ID+".json")
	if err := os.WriteFile(path, append([]byte("damaged"), want...), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := New(Config{Dir: dir, Shards: 1, Exec: fakeExec})
	if err != nil {
		t.Fatalf("restart over corrupt store refused: %v", err)
	}
	defer d2.Close()
	fin := waitTerminal(t, d2, st.ID)
	if fin.State != StateDone {
		t.Fatalf("re-execution ended %s (%s), want done", fin.State, fin.Error)
	}
	got, ok := d2.Result(st.ID)
	if !ok {
		t.Fatal("re-executed result missing")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("re-executed result differs:\n got %q\nwant %q", got, want)
	}
	s := d2.Stats()
	if s.CorruptResults < 1 || s.Resumed != 1 || s.Executions != 1 {
		t.Fatalf("stats = corrupt %d resumed %d executions %d, want >=1/1/1", s.CorruptResults, s.Resumed, s.Executions)
	}
}

// TestRestartTruncatedJournalTail pins crash-tolerant resume: a
// journal whose tail was torn mid-record (power loss during append)
// restarts cleanly — the valid prefix resumes, the partial record is
// dropped and counted, and the lost submission simply re-runs when the
// client resubmits it, byte-identical.
func TestRestartTruncatedJournalTail(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	exec := func(ctx context.Context, spec ExperimentSpec, d string) ([]byte, error) {
		if spec.Seed == 2 {
			<-gate // hold B so it stays queued across the drain
		}
		return fakeExec(ctx, spec, d)
	}
	d1, err := New(Config{Dir: dir, Shards: 1, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	specA := ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 1}
	specB := ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 2}
	stA, err := d1.Submit(specA, "c")
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, d1, stA.ID)
	wantA, _ := d1.Result(stA.ID)
	stB, err := d1.Submit(specB, "c")
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	waitTerminal(t, d1, stB.ID)
	wantB, _ := d1.Result(stB.ID)
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the journal mid-record: chop half of B's (final) line, as a
	// crash between write and sync would.
	jpath := filepath.Join(dir, "journal.jsonl")
	b, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(b, []byte("\n")), []byte("\n"))
	last := lines[len(lines)-1]
	keep := len(b) - len(last)/2 - 1 // half the last line, no newline
	if err := os.WriteFile(jpath, b[:keep], 0o644); err != nil {
		t.Fatal(err)
	}
	// Remove B's stored result too: the torn record must not resurrect
	// it, and a resubmission must recompute identical bytes.
	os.Remove(filepath.Join(dir, "results", stB.ID+".json"))
	os.Remove(filepath.Join(dir, "results", stB.ID+".json.sha256"))

	d2, err := New(Config{Dir: dir, Shards: 1, Exec: exec})
	if err != nil {
		t.Fatalf("restart over torn journal refused: %v", err)
	}
	defer d2.Close()
	if s := d2.Stats(); s.JournalDropped != 1 {
		t.Fatalf("journal_dropped = %d, want 1", s.JournalDropped)
	}
	// A survives the tear: still served from the verified store.
	gotA, ok := d2.Result(stA.ID)
	if !ok || !bytes.Equal(gotA, wantA) {
		t.Fatalf("A lost with the torn tail: ok=%v", ok)
	}
	// B's record was the torn line: unknown now, and resubmission runs
	// it fresh to the same bytes.
	if _, ok := d2.Status(stB.ID); ok {
		t.Fatal("torn record resurrected B")
	}
	stB2, err := d2.Submit(specB, "c")
	if err != nil {
		t.Fatal(err)
	}
	if stB2.ID != stB.ID {
		t.Fatalf("resubmitted B got a different ID: %s vs %s", stB2.ID, stB.ID)
	}
	waitTerminal(t, d2, stB.ID)
	gotB, ok := d2.Result(stB.ID)
	if !ok || !bytes.Equal(gotB, wantB) {
		t.Fatalf("recomputed B differs: ok=%v\n got %q\nwant %q", ok, gotB, wantB)
	}
	// The journal accepts appends after the truncation: a third spec
	// journals and resumes normally (the tail repair left a clean file).
	stC, err := d2.Submit(ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 3}, "c")
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, d2, stC.ID)
}

// TestRestartGarbledJournalGarbage: arbitrary garbage appended to the
// journal (a partially flushed page, editor damage) is dropped at
// restart without losing the valid prefix.
func TestRestartGarbledJournalGarbage(t *testing.T) {
	dir := t.TempDir()
	d1, err := New(Config{Dir: dir, Shards: 1, Exec: fakeExec})
	if err != nil {
		t.Fatal(err)
	}
	st, err := d1.Submit(ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 1}, "c")
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, d1, st.ID)
	want, _ := d1.Result(st.ID)
	d1.Close()

	jpath := filepath.Join(dir, "journal.jsonl")
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{\"broken\": \nnot json at all\x00\xff{{{")
	f.Close()

	d2, err := New(Config{Dir: dir, Shards: 1, Exec: fakeExec})
	if err != nil {
		t.Fatalf("restart over garbled journal refused: %v", err)
	}
	defer d2.Close()
	if s := d2.Stats(); s.JournalDropped == 0 {
		t.Fatal("garbled tail not counted")
	}
	got, ok := d2.Result(st.ID)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("valid prefix lost: ok=%v", ok)
	}
}

// TestResultEvictedReexec pins self-healing through the GC path: a
// done experiment whose result was evicted re-queues on fetch and the
// recomputed payload is byte-identical.
func TestResultEvictedReexec(t *testing.T) {
	dir := t.TempDir()
	d, err := New(Config{Dir: dir, Shards: 1, Exec: fakeExec, StoreMaxResults: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	specA := ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 1}
	specB := ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 2}
	stA, err := d.Submit(specA, "c")
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, d, stA.ID)
	want, ok := d.Result(stA.ID)
	if !ok {
		t.Fatal("A missing before eviction")
	}
	wantCopy := append([]byte(nil), want...)
	stB, err := d.Submit(specB, "c")
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, d, stB.ID) // Put(B) evicts A (MaxResults 1)

	// First fetch misses and triggers the re-execution...
	if _, ok := d.Result(stA.ID); ok {
		t.Fatal("evicted A served without re-execution")
	}
	// ...which runs to done again and restores identical bytes.
	fin := waitTerminal(t, d, stA.ID)
	if fin.State != StateDone {
		t.Fatalf("re-execution ended %s (%s)", fin.State, fin.Error)
	}
	got, ok := d.Result(stA.ID)
	if !ok || !bytes.Equal(got, wantCopy) {
		t.Fatalf("recomputed A differs: ok=%v", ok)
	}
	s := d.Stats()
	if s.Reexecuted != 1 || s.EvictedResults < 1 {
		t.Fatalf("stats = reexecuted %d evicted %d, want 1/>=1", s.Reexecuted, s.EvictedResults)
	}
}
