package workload

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTrace(t *testing.T) *Trace {
	t.Helper()
	p := DefaultParams()
	p.Horizon = 500
	p.Clusters = 2
	tr, err := GenerateTrace(p, stream("trace"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) == 0 {
		t.Fatal("empty trace")
	}
	return tr
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != len(tr.Jobs) {
		t.Fatalf("round trip job count %d != %d", len(got.Jobs), len(tr.Jobs))
	}
	if !got.Jobs[0].Equal(tr.Jobs[0]) {
		t.Fatalf("first job differs: %+v vs %+v", got.Jobs[0], tr.Jobs[0])
	}
	if got.Params != tr.Params {
		t.Fatal("params lost in round trip")
	}
}

func TestTraceGobRoundTrip(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != len(tr.Jobs) || !got.Jobs[len(got.Jobs)-1].Equal(tr.Jobs[len(tr.Jobs)-1]) {
		t.Fatal("gob round trip lost data")
	}
}

func TestReadTraceJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadTraceJSON(strings.NewReader("{broken")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadTraceJSONRejectsInvalidTrace(t *testing.T) {
	tr := sampleTrace(t)
	tr.Jobs[0].Runtime = -5 // corrupt
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTraceJSON(&buf); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func TestTraceValidateCatchesCorruption(t *testing.T) {
	corruptions := []func(*Trace){
		func(tr *Trace) { tr.Jobs[1].Arrival = tr.Jobs[0].Arrival - 1 }, // unsorted... may still be >= 0
		func(tr *Trace) { tr.Jobs[0].Arrival = tr.Params.Horizon + 1 },
		func(tr *Trace) { tr.Jobs[0].Requested = tr.Jobs[0].Runtime / 2 },
		func(tr *Trace) { tr.Jobs[0].Benefit = 99 },
		func(tr *Trace) { tr.Jobs[0].Cluster = 99 },
		func(tr *Trace) { tr.Jobs[0].Partition = 2 },
		func(tr *Trace) {
			tr.Jobs[0].Runtime = tr.Params.TCPU + 1
			tr.Jobs[0].Requested = 3 * tr.Jobs[0].Runtime
			tr.Jobs[0].Class = Local
		},
	}
	for i, corrupt := range corruptions {
		tr := sampleTrace(t)
		if len(tr.Jobs) < 2 {
			t.Skip("need at least 2 jobs")
		}
		corrupt(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("corruption %d passed validation", i)
		}
	}
}

func TestTraceValidateAcceptsClean(t *testing.T) {
	if err := sampleTrace(t).Validate(); err != nil {
		t.Fatal(err)
	}
}
