package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelStartsAtZero(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
	if k.Processed() != 0 {
		t.Fatalf("Processed() = %v, want 0", k.Processed())
	}
}

func TestScheduleAndRunOrder(t *testing.T) {
	k := NewKernel()
	var got []float64
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		k.Schedule(at, func() { got = append(got, at) })
	}
	n := k.Run(10)
	if n != 5 {
		t.Fatalf("Run executed %d events, want 5", n)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.Schedule(7, func() { got = append(got, i) })
	}
	k.Run(10)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of FIFO order at %d: %v", i, got[:i+1])
		}
	}
}

func TestAfterUsesRelativeDelay(t *testing.T) {
	k := NewKernel()
	var at Time = -1
	k.Schedule(10, func() {
		k.After(5, func() { at = k.Now() })
	})
	k.Run(100)
	if at != 15 {
		t.Fatalf("After(5) from t=10 fired at %v, want 15", at)
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	k := NewKernel()
	fired := false
	k.Schedule(50, func() { fired = true })
	k.Run(49)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if k.Now() != 49 {
		t.Fatalf("clock = %v, want horizon 49", k.Now())
	}
	k.Run(51)
	if !fired {
		t.Fatal("event within extended horizon did not fire")
	}
}

func TestClockAdvancesToHorizonWhenIdle(t *testing.T) {
	k := NewKernel()
	k.Run(1000)
	if k.Now() != 1000 {
		t.Fatalf("idle run left clock at %v, want 1000", k.Now())
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.Schedule(5, func() { fired = true })
	k.Cancel(e)
	k.Run(10)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	k.Cancel(e) // repeat must not panic
	k.Cancel(nil)
}

func TestCancelFromInsideEvent(t *testing.T) {
	k := NewKernel()
	fired := false
	var victim *Event
	k.Schedule(1, func() { k.Cancel(victim) })
	victim = k.Schedule(2, func() { fired = true })
	k.Run(10)
	if fired {
		t.Fatal("event cancelled from another event still fired")
	}
}

func TestStopFromEvent(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		k.Schedule(Time(i), func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run(100)
	if count != 3 {
		t.Fatalf("Stop did not halt run: %d events fired, want 3", count)
	}
	// A later Run resumes.
	k.Run(100)
	if count != 10 {
		t.Fatalf("resumed run fired %d total, want 10", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(10, func() {})
	k.Run(20)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.Schedule(5, func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("After(-1) did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestNilFuncPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	k.Schedule(1, nil)
}

func TestMaxEvents(t *testing.T) {
	k := NewKernel()
	k.MaxEvents = 5
	var reschedule func()
	reschedule = func() { k.After(1, reschedule) }
	k.After(1, reschedule)
	k.Run(Infinity)
	if !k.Overflowed {
		t.Fatal("runaway simulation did not set Overflowed")
	}
	if k.Processed() != 5 {
		t.Fatalf("processed %d events, want 5", k.Processed())
	}
}

func TestStepDrainsInOrder(t *testing.T) {
	k := NewKernel()
	var got []Time
	for _, at := range []Time{3, 1, 2} {
		at := at
		k.Schedule(at, func() { got = append(got, at) })
	}
	steps := 0
	for k.Step() {
		steps++
	}
	if steps != 3 {
		t.Fatalf("Step drained %d events, want 3", steps)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("Step fired out of order: %v", got)
	}
}

func TestPendingCountsLiveEvents(t *testing.T) {
	k := NewKernel()
	e1 := k.Schedule(1, func() {})
	k.Schedule(2, func() {})
	k.Cancel(e1)
	if got := k.Pending(); got != 1 {
		t.Fatalf("Pending() = %d, want 1", got)
	}
}

func TestRunAll(t *testing.T) {
	k := NewKernel()
	count := 0
	k.Schedule(1e12, func() { count++ })
	k.Schedule(1, func() { count++ })
	if n := k.RunAll(); n != 2 || count != 2 {
		t.Fatalf("RunAll ran %d events (count %d), want 2", n, count)
	}
}

// Property: any batch of events fires in nondecreasing time order, and
// every non-cancelled event within the horizon fires exactly once.
func TestEventOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		k := NewKernel()
		var fired []Time
		for _, r := range raw {
			at := Time(r % 1000)
			k.Schedule(at, func() { fired = append(fired, at) })
		}
		k.Run(Infinity)
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: nested scheduling (events scheduling events) still respects
// global time order.
func TestNestedSchedulingProperty(t *testing.T) {
	f := func(delays []uint8) bool {
		k := NewKernel()
		last := Time(math.Inf(-1))
		ok := true
		var chain func(i int)
		chain = func(i int) {
			if k.Now() < last {
				ok = false
			}
			last = k.Now()
			if i < len(delays) {
				k.After(Time(delays[i]), func() { chain(i + 1) })
			}
		}
		k.After(0, func() { chain(0) })
		k.Run(Infinity)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKernelScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		for j := 0; j < 1000; j++ {
			k.Schedule(Time(j%97), func() {})
		}
		k.Run(Infinity)
	}
}

func BenchmarkKernelSelfReschedule(b *testing.B) {
	k := NewKernel()
	n := 0
	var f func()
	f = func() {
		n++
		if n < b.N {
			k.After(1, f)
		}
	}
	b.ResetTimer()
	k.After(1, f)
	k.Run(Infinity)
}
