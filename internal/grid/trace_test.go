package grid

import (
	"testing"

	"rmscale/internal/sim"
)

func TestEngineTracing(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	e.Tracer = sim.NewTracer(e.K, 0)
	e.Run()
	if e.Tracer.Count("arrival") != e.Metrics.JobsArrived {
		t.Fatalf("traced %d arrivals for %d jobs",
			e.Tracer.Count("arrival"), e.Metrics.JobsArrived)
	}
	if e.Tracer.Count("dispatch") < e.Metrics.JobsArrived {
		t.Fatalf("traced %d dispatches for %d jobs",
			e.Tracer.Count("dispatch"), e.Metrics.JobsArrived)
	}
	if e.Tracer.Count("update") != e.Metrics.UpdatesSent {
		t.Fatalf("traced %d updates, metrics say %d",
			e.Tracer.Count("update"), e.Metrics.UpdatesSent)
	}
}

func TestEngineWithoutTracerIsSilent(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Nil tracer must be safe end to end.
	e.Run()
	if e.Tracer.Count("arrival") != 0 {
		t.Fatal("nil tracer recorded events")
	}
}
