package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rmscale/internal/runner"
)

// Options configures a chaos sweep.
type Options struct {
	// Schedules is how many random schedules to generate and run.
	Schedules int
	// Seed roots the schedule generator; a (Seed, Schedules) pair
	// names a fully reproducible sweep.
	Seed int64
	// Workers sizes the runner pool; <= 0 picks GOMAXPROCS.
	Workers int
	// Replays is how many times each violating schedule is re-run to
	// confirm deterministic reproduction; default 2.
	Replays int
	// ShrinkBudget bounds simulation runs spent shrinking one
	// violating schedule; default 200.
	ShrinkBudget int
	// OutDir, when non-empty, receives one <name>.json minimal
	// reproducer per violating schedule.
	OutDir string
	// Log, when non-nil, receives human-readable progress lines.
	Log io.Writer
	// Context cancels the sweep early; nil means Background.
	Context context.Context
}

// Finding is one violating schedule with its replay and shrink
// evidence.
type Finding struct {
	Schedule Schedule
	Report   Report
	// ReplayFingerprints are the fingerprints of the confirmation
	// re-runs; Deterministic is true when all of them (and the
	// original) agree.
	ReplayFingerprints []string
	Deterministic      bool
	Shrunk             Schedule
	ShrunkReport       Report
	ShrinkEvals        int
	// File is the written reproducer path ("" without OutDir).
	File string
}

// Result summarizes a sweep.
type Result struct {
	Ran      int
	Findings []Finding
}

// Clean reports whether the sweep found no violations.
func (r Result) Clean() bool { return len(r.Findings) == 0 }

// Sweep generates opts.Schedules random fault schedules, runs each
// against an audited engine on the runner pool, then sequentially
// replays, shrinks and (optionally) serializes every violating
// schedule. It returns an error only for infrastructure failures; the
// caller decides what violations mean via Result.Clean.
func Sweep(opts Options) (Result, error) {
	if opts.Schedules <= 0 {
		return Result{}, fmt.Errorf("chaos: Schedules must be positive, got %d", opts.Schedules)
	}
	if opts.Replays <= 0 {
		opts.Replays = 2
	}
	if opts.ShrinkBudget <= 0 {
		opts.ShrinkBudget = 200
	}
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}

	schedules := make([]Schedule, opts.Schedules)
	reports := make([]Report, opts.Schedules)
	run, err := runner.Start(runner.Options{
		Workers:   opts.Workers,
		KeepGoing: true,
		Context:   opts.Context,
	})
	if err != nil {
		return Result{}, err
	}
	for i := range schedules {
		i := i
		schedules[i] = Generate(opts.Seed, i)
		run.Pool.Submit(runner.Task{
			ID: schedules[i].Name,
			Run: func(*runner.TaskCtx) error {
				r, err := Run(schedules[i])
				if err != nil {
					return err
				}
				reports[i] = r
				return nil
			},
		})
	}
	if err := run.Wait(); err != nil {
		return Result{}, err
	}

	res := Result{Ran: opts.Schedules}
	for i, r := range reports {
		if !r.Violating() {
			continue
		}
		s := schedules[i]
		logf("chaos: %s (%s) violated %v, fingerprint %s", s.Name, s.Model, r.Kinds, r.Fingerprint)
		f := Finding{Schedule: s, Report: r, Deterministic: true}
		for rep := 0; rep < opts.Replays; rep++ {
			rr, err := Run(s)
			if err != nil {
				return res, err
			}
			f.ReplayFingerprints = append(f.ReplayFingerprints, rr.Fingerprint)
			if rr.Fingerprint != r.Fingerprint {
				f.Deterministic = false
			}
		}
		if !f.Deterministic {
			logf("chaos: %s does NOT reproduce deterministically: %v vs %s",
				s.Name, f.ReplayFingerprints, r.Fingerprint)
		}
		f.Shrunk, f.ShrunkReport, f.ShrinkEvals = Shrink(s, r, opts.ShrinkBudget)
		logf("chaos: %s shrunk %d -> %d events in %d runs",
			s.Name, s.Events(), f.Shrunk.Events(), f.ShrinkEvals)
		if opts.OutDir != "" {
			if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
				return res, err
			}
			path := filepath.Join(opts.OutDir, s.Name+".json")
			if err := f.Shrunk.WriteJSON(path); err != nil {
				return res, err
			}
			f.File = path
			logf("chaos: reproducer written to %s", path)
		}
		res.Findings = append(res.Findings, f)
	}
	return res, nil
}

// WriteJSON serializes the schedule as an indented, atomically written
// reproducer file.
func (s Schedule) WriteJSON(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return runner.WriteFileAtomic(path, append(b, '\n'), 0o644)
}

// ReadJSON loads and validates a schedule reproducer.
func ReadJSON(path string) (Schedule, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Schedule{}, err
	}
	var s Schedule
	if err := json.Unmarshal(b, &s); err != nil {
		return Schedule{}, fmt.Errorf("chaos: parsing %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, fmt.Errorf("chaos: %s: %w", path, err)
	}
	return s, nil
}
