package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func postSpec(t *testing.T, url string, spec ExperimentSpec, client string) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/experiments", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Rmscale-Client", client)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body
}

// TestHTTPEndToEnd drives the full client journey against the real
// executor: submit a sim experiment, stream its progress to
// completion, fetch the stored result.
func TestHTTPEndToEnd(t *testing.T) {
	d, err := New(Config{Dir: t.TempDir(), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	srv := httptest.NewServer(NewServer(d).Handler())
	defer srv.Close()

	spec := ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 1, Horizon: 250}
	resp, body := postSpec(t, srv.URL, spec, "e2e")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	if st.ID == "" || st.State.Terminal() {
		t.Fatalf("submit status = %+v, want a queued/running experiment", st)
	}

	// Stream until terminal: one JSON line per state change.
	streamResp, err := http.Get(srv.URL + "/v1/experiments/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", ct)
	}
	dec := json.NewDecoder(streamResp.Body)
	var last Status
	lines := 0
	for {
		if err := dec.Decode(&last); err != nil {
			t.Fatalf("stream decode after %d lines: %v", lines, err)
		}
		lines++
		if last.State.Terminal() {
			break
		}
	}
	if last.State != StateDone {
		t.Fatalf("experiment ended %s: %s", last.State, last.Error)
	}

	resp, body = get(t, srv.URL+"/v1/experiments/"+st.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d: %s", resp.StatusCode, body)
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if res.Spec != spec {
		t.Fatalf("result spec = %+v, want %+v (self-describing envelope)", res.Spec, spec)
	}
	if res.Summary == nil || res.Summary.Jobs == 0 {
		t.Fatalf("result summary = %+v, want a completed simulation", res.Summary)
	}

	if resp, _ := get(t, srv.URL+"/v1/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
	resp, body = get(t, srv.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: HTTP %d", resp.StatusCode)
	}
	var stats Stats
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Executions != 1 || stats.Completed != 1 {
		t.Fatalf("stats = %+v, want one completed execution", stats)
	}
}

// TestHTTPDedupByteIdentical pins the cross-client dedup contract over
// the wire: two identical submissions yield one execution and
// byte-identical result payloads.
func TestHTTPDedupByteIdentical(t *testing.T) {
	d, err := New(Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	srv := httptest.NewServer(NewServer(d).Handler())
	defer srv.Close()

	spec := ExperimentSpec{Kind: KindSim, Model: "CENTRAL", Seed: 5, Horizon: 250}
	resp, body := postSpec(t, srv.URL, spec, "alice")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: HTTP %d: %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, d, st.ID)
	if fin.State != StateDone {
		t.Fatalf("experiment ended %s: %s", fin.State, fin.Error)
	}

	// The second, identical submission answers 200 from the store.
	resp, body = postSpec(t, srv.URL, spec, "bob")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dedup submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var st2 Status
	if err := json.Unmarshal(body, &st2); err != nil {
		t.Fatal(err)
	}
	if !st2.Dedup || st2.ID != st.ID {
		t.Fatalf("dedup submit status = %+v, want dedup of %s", st2, st.ID)
	}

	_, b1 := get(t, srv.URL+"/v1/experiments/"+st.ID+"/result")
	_, b2 := get(t, srv.URL+"/v1/experiments/"+st.ID+"/result")
	if !bytes.Equal(b1, b2) || len(b1) == 0 {
		t.Fatal("result fetches are not byte-identical")
	}
	s := d.Stats()
	if s.Executions != 1 || s.DedupHits() != 1 {
		t.Fatalf("stats = %+v, want executions=1 dedup=1", s)
	}
}

// TestHTTPAdmission429 pins the saturation surface: HTTP 429 with a
// Retry-After hint when the queue is full, and acceptance again once
// it drains.
func TestHTTPAdmission429(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	exec := func(ctx context.Context, spec ExperimentSpec, dir string) ([]byte, error) {
		started <- struct{}{}
		<-release
		return fakeExec(ctx, spec, dir)
	}
	d, err := New(Config{Shards: 1, QueueCap: 1, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	srv := httptest.NewServer(NewServer(d).Handler())
	defer srv.Close()

	mk := func(seed int64) ExperimentSpec {
		return ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: seed}
	}
	resp, body := postSpec(t, srv.URL, mk(1), "a")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: HTTP %d: %s", resp.StatusCode, body)
	}
	<-started // shard busy; queue empty
	resp, body = postSpec(t, srv.URL, mk(2), "b")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2: HTTP %d: %s", resp.StatusCode, body)
	}
	var queued Status
	if err := json.Unmarshal(body, &queued); err != nil {
		t.Fatal(err)
	}

	resp, body = postSpec(t, srv.URL, mk(3), "c")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit at capacity: HTTP %d: %s, want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response missing Retry-After")
	}
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("429 body = %q, want an error payload", body)
	}

	close(release)
	if fin := waitTerminal(t, d, queued.ID); fin.State != StateDone {
		t.Fatalf("queued experiment ended %s", fin.State)
	}
	// Capacity is available again: the refused spec now lands.
	resp, _ = postSpec(t, srv.URL, mk(3), "c")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit after drain: HTTP %d, want 202", resp.StatusCode)
	}
}

// TestHTTPResultStates pins the result endpoint's non-200 answers:
// 404 for unknown IDs, 409 with a status body while unfinished.
func TestHTTPResultStates(t *testing.T) {
	release := make(chan struct{})
	exec := func(ctx context.Context, spec ExperimentSpec, dir string) ([]byte, error) {
		<-release
		return fakeExec(ctx, spec, dir)
	}
	d, err := New(Config{Shards: 1, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	srv := httptest.NewServer(NewServer(d).Handler())
	defer srv.Close()

	if resp, _ := get(t, srv.URL+"/v1/experiments/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown status: HTTP %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, srv.URL+"/v1/experiments/nope/result"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown result: HTTP %d, want 404", resp.StatusCode)
	}

	spec := ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 1}
	resp, body := postSpec(t, srv.URL, spec, "a")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	resp, body = get(t, srv.URL+"/v1/experiments/"+st.ID+"/result")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unfinished result: HTTP %d, want 409", resp.StatusCode)
	}
	var pending Status
	if err := json.Unmarshal(body, &pending); err != nil || pending.State.Terminal() {
		t.Fatalf("409 body = %s, want the pending status", body)
	}
	close(release)
	waitTerminal(t, d, st.ID)
}
