package lint

import "sort"

// Config is the single data-driven description of where each
// invariant applies. Everything the suite knows about the module —
// which packages are simulation-visible, which form the deterministic
// kernel, what the RMS-model enum is called and which constants it
// must always cover — lives here, so extending the module means
// editing one literal, and the config meta-test keeps the lists
// honest against the packages that actually exist.
type Config struct {
	// SimVisible lists the packages whose behaviour is visible inside
	// a simulation run: virtual time only (nowallclock) and named RNG
	// streams only (noglobalrand). Wall-clock reads or global RNG
	// draws here would break byte-identical reproducibility.
	SimVisible []string

	// Kernel lists the deterministic-kernel packages where goroutines,
	// channels and sync primitives are banned (nokernelgoroutines):
	// concurrency belongs to internal/runner, which parallelizes whole
	// single-threaded simulations.
	Kernel []string

	// Coordinator lists the parallel-execution coordinator packages
	// (coorddiscipline): concurrency is legal only inside functions
	// marked //lint:coordinator, which documents the barrier argument
	// keeping worker scheduling invisible to simulation results. These
	// packages sit between the kernel (concurrency banned outright) and
	// the service layer (concurrent by design, locksafe-governed).
	Coordinator []string

	// MapOrder lists the packages checked for order-dependent map
	// iteration (mapiterorder). "rmscale/..." style entries apply the
	// analyzer to a whole subtree.
	MapOrder []string

	// Exhaustive lists the packages whose switches over the RMS-model
	// enum must cover every model (rmsexhaustive).
	Exhaustive []string

	// HotAlloc lists the packages where //lint:hotpath allocation
	// budgets are enforced (hotalloc). Marks can appear anywhere the
	// list covers; packages without marks cost one map lookup.
	HotAlloc []string

	// LockSafe lists the concurrent service-layer packages held to the
	// locking discipline (locksafe): no blocking while a mutex is
	// held, deferred unlocks on multi-return functions, guarded-field
	// access only under the guard or in *Locked methods.
	LockSafe []string

	// Exempt maps internal packages that deliberately sit outside
	// every curated analyzer list to the reason why. The config
	// meta-test fails when a module package is neither classified nor
	// exempted, so adding a package forces a conscious decision.
	// "m/..." entries exempt a subtree.
	Exempt map[string]string

	// EnumPkg, EnumType and EnumConstants describe the RMS-model enum:
	// switches over EnumPkg.EnumType must either cover every constant
	// named in EnumConstants or carry a panicking default.
	EnumPkg       string
	EnumType      string
	EnumConstants []string
}

// DefaultConfig is the module's invariant map.
var DefaultConfig = Config{
	SimVisible: []string{
		"rmscale/internal/sim",
		"rmscale/internal/grid",
		"rmscale/internal/rms",
		"rmscale/internal/routing",
		"rmscale/internal/scale",
		"rmscale/internal/anneal",
		"rmscale/internal/workload",
		"rmscale/internal/topology",
		"rmscale/internal/experiments",
		"rmscale/internal/stats",
		"rmscale/internal/audit",
		"rmscale/internal/audit/chaos",
		// The daemon and its load harness never let wall time or global
		// RNG leak into simulation results; their few legitimate
		// real-time reads (request timestamps, latency measurement,
		// admission backoff) carry //lint:allow annotations at the site.
		"rmscale/internal/service",
		"rmscale/internal/service/loadgen",
		"rmscale/internal/service/chaos",
		// The crash-consistency harness replays the persistence layer on
		// simulated disks; its results must be seed-reproducible, so it
		// runs on a frozen clock and never touches global RNG.
		"rmscale/internal/service/crash",
		// The conservative parallel executor runs inside simulations; its
		// results must be byte-identical to serial runs, so wall time and
		// global RNG are banned the same as in the kernel.
		"rmscale/internal/sim/par",
	},
	Kernel: []string{
		"rmscale/internal/sim",
		"rmscale/internal/grid",
		"rmscale/internal/rms",
		"rmscale/internal/routing",
		"rmscale/internal/scale",
		"rmscale/internal/anneal",
		"rmscale/internal/workload",
		"rmscale/internal/topology",
		"rmscale/internal/stats",
		// The auditor rides inside the simulation, so it is held to the
		// kernel's no-concurrency discipline; the chaos harness above it
		// drives the runner pool and is only simulation-visible.
		"rmscale/internal/audit",
		// The service daemon is concurrent by design — worker shards,
		// HTTP handlers, a load generator — but every simulation it
		// executes stays single-threaded underneath. Listing it here
		// forces each concurrency site to justify itself with an
		// annotation instead of letting sync primitives creep in
		// unreviewed.
		"rmscale/internal/service",
		"rmscale/internal/service/loadgen",
		"rmscale/internal/service/chaos",
		// Crash enumeration is deliberately single-threaded: one op
		// trace, one crash point at a time. Concurrency here would
		// destroy the prefix-exact replay the harness depends on.
		"rmscale/internal/service/crash",
	},
	// The conservative window executor is the one sanctioned bridge
	// between simulation results and real goroutines: deliberately NOT a
	// Kernel package (its whole point is the worker pool), but its
	// concurrency is confined to the //lint:coordinator-marked window
	// barrier, where the determinism argument is spelled out.
	Coordinator: []string{
		"rmscale/internal/sim/par",
	},

	// Map-iteration order can leak into any rendered table, figure,
	// JSON file or checkpoint, so the whole module is covered — the
	// "rmscale/..." subtree entry includes internal/service/chaos and
	// internal/service/loadgen (verified by TestConfigMatchesModule).
	MapOrder:   []string{"rmscale/..."},
	Exhaustive: []string{"rmscale/..."},

	// Hot-path allocation budgets can be declared anywhere; the marks
	// currently live in internal/sim (kernel ops, Ticker), internal/grid
	// (per-event message fabric) and internal/service (dedup fast path).
	HotAlloc: []string{"rmscale/..."},

	// The locking discipline governs the concurrent service layer; the
	// simulation kernel below it bans sync primitives outright
	// (nokernelgoroutines), so listing it here would be vacuous.
	LockSafe: []string{
		"rmscale/internal/service",
		"rmscale/internal/service/loadgen",
		"rmscale/internal/service/chaos",
		"rmscale/internal/service/crash",
	},

	// Packages deliberately outside the curated SimVisible/Kernel/
	// LockSafe classification, with the reason on record. The wildcard
	// analyzers (mapiterorder, rmsexhaustive, hotalloc) still cover
	// them.
	Exempt: map[string]string{
		"rmscale/internal/runner":     "parallelizes whole single-threaded simulations; wall-clock scheduling and worker goroutines are its job, and sim-visibility stops at its API",
		"rmscale/internal/fsutil/...": "filesystem plumbing beneath the store and journal (and the simulated crash filesystem that models it); blocking IO is its purpose and no simulation state flows through it",
		"rmscale/internal/perfbench":  "benchmark harness; reads the wall clock by design to measure it",
		"rmscale/internal/lint/...":   "the analyzers themselves; never linked into a simulation binary",
	},

	EnumPkg:  "rmscale/internal/rms",
	EnumType: "ID",
	EnumConstants: []string{
		"IDCentral", "IDLowest", "IDReserve", "IDAuction",
		"IDSenderInit", "IDReceiverInit", "IDSymmetric",
	},
}

// Classified reports how the config covers pkgPath: curated means a
// SimVisible/Kernel/Coordinator/LockSafe entry names it (the lists
// that encode a conscious decision per package — the wildcard-based
// MapOrder, Exhaustive and HotAlloc lists do not count), exempt means
// an Exempt entry opts it out. The config meta-test requires every
// internal package to be one or the other.
func (cfg Config) Classified(pkgPath string) (curated, exempt bool) {
	for _, list := range [][]string{cfg.SimVisible, cfg.Kernel, cfg.Coordinator, cfg.LockSafe} {
		if appliesTo(list, pkgPath) {
			curated = true
		}
	}
	ex := make([]string, 0, len(cfg.Exempt))
	for e := range cfg.Exempt {
		ex = append(ex, e)
	}
	sort.Strings(ex)
	return curated, appliesTo(ex, pkgPath)
}

// appliesTo reports whether an entry list covers the package path.
// An entry "m/..." covers m and everything below it.
func appliesTo(entries []string, pkgPath string) bool {
	for _, e := range entries {
		if e == pkgPath {
			return true
		}
		if root, ok := cutDots(e); ok {
			if pkgPath == root || len(pkgPath) > len(root) && pkgPath[:len(root)+1] == root+"/" {
				return true
			}
		}
	}
	return false
}

func cutDots(e string) (string, bool) {
	const suffix = "/..."
	if len(e) > len(suffix) && e[len(e)-len(suffix):] == suffix {
		return e[:len(e)-len(suffix)], true
	}
	return "", false
}
