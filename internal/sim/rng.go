package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source produces named, independent, deterministic random streams from a
// single master seed. Two Sources built from the same seed hand out
// identical streams for identical names, which makes every component of a
// simulation reproducible independently of the order in which other
// components draw random numbers.
type Source struct {
	seed int64
}

// NewSource returns a stream factory rooted at seed.
func NewSource(seed int64) *Source {
	return &Source{seed: seed}
}

// Seed returns the master seed.
func (s *Source) Seed() int64 { return s.seed }

// Stream returns the deterministic stream for name. Calling Stream twice
// with the same name yields two streams that produce the same sequence.
func (s *Source) Stream(name string) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	const golden = uint64(0x9e3779b97f4a7c15)
	sub := int64(h.Sum64() ^ (uint64(s.seed) * golden))
	//lint:allow noglobalrand the named-stream factory is the single sanctioned rand.New site; the sub-seed derives deterministically from the master seed and stream name
	return &Stream{rng: rand.New(rand.NewSource(sub)), name: name}
}

// Stream is a single deterministic random number stream with the
// distribution helpers the grid model needs.
type Stream struct {
	rng  *rand.Rand
	name string
}

// Name returns the name the stream was created under.
func (st *Stream) Name() string { return st.name }

// Float64 returns a uniform value in [0,1).
func (st *Stream) Float64() float64 { return st.rng.Float64() }

// Uniform returns a uniform value in [lo,hi).
func (st *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*st.rng.Float64()
}

// Intn returns a uniform int in [0,n). It panics when n <= 0, matching
// math/rand.
func (st *Stream) Intn(n int) int { return st.rng.Intn(n) }

// IntRange returns a uniform int in [lo,hi] inclusive.
func (st *Stream) IntRange(lo, hi int) int {
	if hi < lo {
		panic("sim: IntRange hi < lo")
	}
	return lo + st.rng.Intn(hi-lo+1)
}

// Exp returns an exponential variate with the given mean. A zero or
// negative mean yields 0, which callers use to disable a process.
func (st *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return st.rng.ExpFloat64() * mean
}

// LogUniform returns a variate whose logarithm is uniform over
// [log lo, log hi]. This is the execution-time distribution observed in
// the Cirne-Berman supercomputer workload model.
func (st *Stream) LogUniform(lo, hi float64) float64 {
	if lo <= 0 || hi < lo {
		panic("sim: LogUniform requires 0 < lo <= hi")
	}
	return lo * math.Exp(st.rng.Float64()*math.Log(hi/lo))
}

// LogNormal returns exp(N(mu, sigma)).
func (st *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*st.rng.NormFloat64())
}

// Normal returns a normal variate.
func (st *Stream) Normal(mu, sigma float64) float64 {
	return mu + sigma*st.rng.NormFloat64()
}

// Weibull returns a Weibull variate with the given shape and scale.
// Shape < 1 gives the bursty inter-arrival behaviour reported for
// supercomputer workloads.
func (st *Stream) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("sim: Weibull requires positive shape and scale")
	}
	u := st.rng.Float64()
	// Guard against u == 0: log(0) is -Inf.
	for u == 0 {
		u = st.rng.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// Bool returns true with probability p.
func (st *Stream) Bool(p float64) bool { return st.rng.Float64() < p }

// Perm returns a pseudo-random permutation of [0,n).
func (st *Stream) Perm(n int) []int { return st.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (st *Stream) Shuffle(n int, swap func(i, j int)) { st.rng.Shuffle(n, swap) }

// Sample returns k distinct values from [0,n) in random order. When
// k >= n it returns a permutation of all n values.
func (st *Stream) Sample(n, k int) []int {
	if k >= n {
		return st.rng.Perm(n)
	}
	p := st.rng.Perm(n)
	return p[:k]
}

// SampleInto is Sample with caller-provided scratch: it fills dst[:n]
// with a permutation of [0,n) and returns the first min(k, n) entries.
// dst must have capacity for n values. The draw sequence is exactly the
// one Sample/Perm consume (math/rand's Fisher–Yates loop), so swapping
// Sample for SampleInto never shifts a stream — hot paths get the
// allocation-free variant without perturbing determinism.
func (st *Stream) SampleInto(dst []int, n, k int) []int {
	m := dst[:n]
	for i := 0; i < n; i++ {
		j := st.rng.Intn(i + 1)
		m[i] = m[j]
		m[j] = i
	}
	if k > n {
		k = n
	}
	return m[:k]
}
