// Package crash is the crash-consistency harness: it runs canonical
// journal/store workloads against the simulated filesystem
// (internal/fsutil/crashfs), enumerates every crash point in the
// recorded op trace plus torn- and garbled-tail variants of the
// final op, restarts the persistence layer on each materialized disk
// image, and asserts the recovery invariants DESIGN.md §7 promises:
//
//   - recovery always succeeds: no crash image makes OpenJournalFS or
//     NewStore+Audit refuse to start;
//   - the journal recovers to a valid prefix, and Dropped() agrees
//     with an independent line-scan oracle over the raw bytes;
//   - every record the recovered journal serves is byte-identical to
//     what was journaled, and every acknowledged record survives;
//   - every store entry is checksum-verified or absent/quarantined —
//     corrupt or wrong bytes are never served;
//   - acknowledged, durably-stored results are never lost (the
//     invariant that catches a missing parent-dir fsync), except
//     where the workload itself weakened the guarantee (GC eviction,
//     deliberate corruption);
//   - recovery is idempotent: recovering twice from any image leaves
//     the disk byte-identical to recovering once;
//   - re-executed (re-stored) results round-trip byte-identical to
//     the fault-free reference.
//
// Everything is deterministic — fixed clock, generated payloads, no
// randomness — so a failure report names an exact (workload, crash
// op, variant) triple that replays identically every run.
package crash

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"rmscale/internal/fsutil/crashfs"
	"rmscale/internal/runner"
	"rmscale/internal/service"
)

// svcDir is the simulated service directory; journal and results live
// under it exactly as they do under a real rmscaled -dir.
const svcDir = "/svc"

// fingerprint guards the harness's journal format.
const fingerprint = "crashtest/v1"

// maxListedFailures bounds how many failure strings the report
// carries; the counts always cover everything.
const maxListedFailures = 50

// Options parameterize a harness run.
type Options struct {
	// Sector is the torn-append granularity in bytes; <= 0 picks 64.
	Sector int
	// MaxTorn bounds how many torn-tail prefixes are materialized per
	// crash point; <= 0 picks 3.
	MaxTorn int
	// Workloads filters which canonical workloads run (by name);
	// empty runs all.
	Workloads []string
	// Log, when non-nil, receives one progress line per workload.
	Log io.Writer
	// SimulateDirSyncLoss runs the workloads on a filesystem that
	// silently drops directory fsyncs — the exact failure mode of an
	// atomic write without the parent-dir fsync. The harness is
	// expected to FAIL under it; the self-test uses this knob to
	// prove the harness detects that class of durability bug.
	SimulateDirSyncLoss bool
}

// Report is the machine-readable harness result.
type Report struct {
	Sector       int              `json:"sector"`
	Workloads    []WorkloadReport `json:"workloads"`
	CrashPoints  int              `json:"crash_points"`
	States       int              `json:"states"`
	Checks       int              `json:"checks"`
	FailureCount int              `json:"failure_count"`
	Failures     []string         `json:"failures,omitempty"`
	OK           bool             `json:"ok"`
}

// WorkloadReport is one workload's slice of the run.
type WorkloadReport struct {
	Name        string `json:"name"`
	Ops         int    `json:"ops"`
	CrashPoints int    `json:"crash_points"`
	States      int    `json:"states"`
	Checks      int    `json:"checks"`
	Failures    int    `json:"failures"`
}

// fixedClock freezes time: harness runs must be reproducible, so no
// wall clock may leak into workloads or recovery.
type fixedClock struct{}

func (fixedClock) Now() time.Time      { return time.Time{} }
func (fixedClock) Sleep(time.Duration) {}

// After satisfies service.Clock; the nil channel never fires, which is
// exactly right — nothing in a crash replay may wait on real time.
func (fixedClock) After(time.Duration) <-chan time.Time { return nil } //lint:allow nokernelgoroutines Clock interface requires the channel-typed signature; the harness never creates or sends on one

// harnessError marks a defect in the harness or its plumbing (not a
// finding about the code under test); it propagates as a panic so a
// broken harness can never report a green run.
type harnessError struct{ err error }

func must(err error) {
	if err != nil {
		panic(harnessError{err})
	}
}

// workload is one canonical persistence scenario.
type workload struct {
	name          string
	maxResults    int // store MaxResults for run and recovery (0 = unbounded)
	maxQuarantine int // store MaxQuarantine for run and recovery (0 = default)
	run           func(o *oracle)
}

// oracle accumulates, while a workload runs, which guarantee became
// binding at which op index. An acknowledgement at op count c is
// binding for every crash prefix of at least c ops; a weakening at
// op count c (GC eviction may begin, deliberate corruption starts)
// legitimizes absence for prefixes of c ops or more.
type oracle struct {
	fs *crashfs.FS
	wl *workload

	journalRef map[string][]byte // id -> exact journaled payload bytes
	journalAck map[string]int    // id -> op count when Record returned
	storeRef   map[string][]byte // id -> payload bytes handed to Put
	storeAck   map[string]int    // id -> op count when the durable Put returned
	maybeGone  map[string]int    // id -> op count after which absence is legitimate
}

func newOracle(fs *crashfs.FS, wl *workload) *oracle {
	return &oracle{
		fs: fs, wl: wl,
		journalRef: map[string][]byte{},
		journalAck: map[string]int{},
		storeRef:   map[string][]byte{},
		storeAck:   map[string]int{},
		maybeGone:  map[string]int{},
	}
}

// openJournal opens the workload journal on the oracle's filesystem.
func (o *oracle) openJournal() *runner.Journal {
	j, _, err := runner.OpenJournalFS(svcDir, fingerprint, o.fs)
	must(err)
	return j
}

// openStore opens the workload store on the oracle's filesystem.
func (o *oracle) openStore() *service.Store {
	st, err := service.NewStore(service.StoreConfig{
		Dir:           svcDir,
		MaxResults:    o.wl.maxResults,
		MaxQuarantine: o.wl.maxQuarantine,
		Clock:         fixedClock{},
		FS:            o.fs,
	})
	must(err)
	return st
}

// journalPayload is the deterministic record body for an id.
type journalPayload struct {
	ID  string `json:"id"`
	Pad string `json:"pad"`
}

// pad generates size deterministic filler bytes seeded by the id.
func pad(id string, size int) string {
	b := make([]byte, size)
	for i := range b {
		b[i] = "abcdefghijklmnopqrstuvwxyz0123456789"[(i+len(id)*7)%36]
	}
	return string(b)
}

// payloadBytes is the deterministic store payload for an id — the
// stand-in for a re-executable, content-addressed result.
func payloadBytes(id string, size int) []byte {
	return []byte(fmt.Sprintf(`{"id":%q,"pad":%q}`+"\n", id, pad(id, size)))
}

// record journals id and registers the acknowledged reference bytes.
func (o *oracle) record(j *runner.Journal, id string, size int) {
	v := journalPayload{ID: id, Pad: pad(id, size)}
	raw, err := json.Marshal(v)
	must(err)
	o.journalRef[id] = raw
	must(j.Record(id, v))
	o.journalAck[id] = o.fs.OpCount()
}

// put stores id and registers the acknowledged reference bytes. The
// store must not be degraded afterwards — on crashfs a Put either
// completes or crashes, so degradation means a harness defect.
func (o *oracle) put(st *service.Store, id string, size int) {
	b := payloadBytes(id, size)
	o.storeRef[id] = b
	st.Put(id, b)
	if why, degraded := st.Degraded(); degraded {
		must(fmt.Errorf("store degraded during workload: %s", why))
	}
	o.storeAck[id] = o.fs.OpCount()
}

// weaken marks ids as legitimately absent from any crash prefix that
// includes the current op count — called before an eviction-risking
// or corrupting operation begins.
func (o *oracle) weaken(ids ...string) {
	at := o.fs.OpCount()
	for _, id := range ids {
		if _, ok := o.maybeGone[id]; !ok {
			o.maybeGone[id] = at
		}
	}
}

// rot corrupts id's stored payload in place, as a decaying disk
// would; sync controls whether the damage itself is flushed.
func (o *oracle) rot(id string, sync bool) {
	o.weaken(id)
	f, err := o.fs.OpenFile(svcDir+"/results/"+id+".json", os.O_WRONLY|os.O_TRUNC, 0o644)
	must(err)
	_, err = f.Write([]byte(`{"rotted":"` + id + `"}` + "\n"))
	must(err)
	if sync {
		must(f.Sync())
	}
	must(f.Close())
}

// workloads returns the canonical scenarios in reporting order.
func workloads() []*workload {
	return []*workload{
		{
			// The daemon hot path: accept (journal), execute, store.
			name: "submit-execute-store",
			run: func(o *oracle) {
				j := o.openJournal()
				st := o.openStore()
				for k := 0; k < 3; k++ {
					id := fmt.Sprintf("exp%02d", k)
					o.record(j, id, 20+70*k)
					o.put(st, id, 40+90*k)
				}
				must(j.Close())
			},
		},
		{
			// Append bursts across two journal sessions: tail
			// recovery, resume, and append-after-resume.
			name: "journal-burst",
			run: func(o *oracle) {
				j := o.openJournal()
				for k := 0; k < 5; k++ {
					o.record(j, fmt.Sprintf("burst%02d", k), 10+60*k)
				}
				must(j.Close())
				j2 := o.openJournal()
				for k := 5; k < 8; k++ {
					o.record(j2, fmt.Sprintf("burst%02d", k), 15+40*k)
				}
				must(j2.Close())
			},
		},
		{
			// LRU GC under a tight bound: eviction removes disk pairs,
			// which weakens the survival guarantee for the evicted.
			name:       "gc-eviction",
			maxResults: 2,
			run: func(o *oracle) {
				st := o.openStore()
				var stored []string
				for k := 0; k < 5; k++ {
					id := fmt.Sprintf("gc%02d", k)
					// Any already-stored entry may be evicted by this
					// Put once the bound is exceeded.
					if k >= 2 {
						o.weaken(stored...)
					}
					o.put(st, id, 30+50*k)
					stored = append(stored, id)
				}
				// A read reshuffles LRU order; promotion may evict too.
				o.weaken(stored...)
				st.Get("gc00")
			},
		},
		{
			// Disk corruption: reads quarantine rotted pairs, and the
			// quarantine bound evicts the oldest beyond the cap.
			name:          "quarantine",
			maxQuarantine: 2,
			run: func(o *oracle) {
				st := o.openStore()
				ids := []string{"qaa", "qbb", "qcc", "qdd"}
				for k, id := range ids {
					o.put(st, id, 35+45*k)
				}
				o.rot("qaa", true)
				o.rot("qbb", true)
				o.rot("qcc", false) // damage still in the page cache
				// Fresh store = empty memory tier: reads verify disk and
				// quarantine the rot; the third quarantine exceeds the
				// cap and evicts the oldest.
				st2 := o.openStore()
				for _, id := range ids {
					st2.Get(id)
				}
			},
		},
		{
			// Drain and restart: close, reopen, audit, keep working —
			// the daemon lifecycle across incarnations.
			name: "drain-restart",
			run: func(o *oracle) {
				j := o.openJournal()
				st := o.openStore()
				o.record(j, "runa", 25)
				o.put(st, "runa", 130)
				o.record(j, "runb", 160)
				o.put(st, "runb", 45)
				must(j.Close())
				j2 := o.openJournal()
				st2 := o.openStore()
				st2.Audit()
				o.record(j2, "runc", 80)
				o.put(st2, "runc", 220)
				must(j2.Close())
			},
		},
	}
}

// Run executes the harness and returns its report. The error is
// non-nil only for harness-internal defects; invariant violations are
// findings inside the report (OK = false).
func Run(opts Options) (rep Report, err error) {
	if opts.Sector <= 0 {
		opts.Sector = 64
	}
	if opts.MaxTorn <= 0 {
		opts.MaxTorn = 3
	}
	defer func() {
		if r := recover(); r != nil {
			he, ok := r.(harnessError)
			if !ok {
				panic(r)
			}
			err = fmt.Errorf("crash: harness defect: %w", he.err)
		}
	}()
	rep.Sector = opts.Sector
	for _, wl := range workloads() {
		if !selected(opts.Workloads, wl.name) {
			continue
		}
		wrep := runWorkload(opts, wl, &rep)
		rep.Workloads = append(rep.Workloads, wrep)
		rep.CrashPoints += wrep.CrashPoints
		rep.States += wrep.States
		rep.Checks += wrep.Checks
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "crashtest: %-22s ops=%-3d crash_points=%-3d states=%-4d checks=%-5d failures=%d\n",
				wl.name, wrep.Ops, wrep.CrashPoints, wrep.States, wrep.Checks, wrep.Failures)
		}
	}
	if len(rep.Workloads) == 0 {
		return rep, fmt.Errorf("crash: no workload matches %v", opts.Workloads)
	}
	rep.OK = rep.FailureCount == 0
	return rep, nil
}

func selected(filter []string, name string) bool {
	if len(filter) == 0 {
		return true
	}
	for _, f := range filter {
		if f == name {
			return true
		}
	}
	return false
}

// runWorkload enumerates every crash point of one workload: a
// fault-free reference run fixes the op count N, then the workload
// replays N+1 times with the crash armed at op 1..N (prefixes of
// 0..N-1 ops) and once unarmed (the complete trace), and every
// materialized variant of every crash state is recovered and checked.
func runWorkload(opts Options, wl *workload, rep *Report) WorkloadReport {
	fsOpts := crashfs.Options{Sector: opts.Sector, DropDirSyncs: opts.SimulateDirSyncLoss}
	ref := newOracle(crashfs.New(fsOpts), wl)
	if crashed := crashfs.Catch(func() { wl.run(ref) }); crashed {
		must(fmt.Errorf("workload %s: reference run crashed", wl.name))
	}
	n := ref.fs.OpCount()
	wrep := WorkloadReport{Name: wl.name, Ops: n}
	for at := 1; at <= n+1; at++ {
		armed := fsOpts
		armed.CrashAt = at
		o := newOracle(crashfs.New(armed), wl)
		crashed := crashfs.Catch(func() { wl.run(o) })
		if crashed != (at <= n) {
			fail(rep, &wrep, fmt.Sprintf("%s@op%d: crash armed at op %d of %d did not behave prefix-exactly (crashed=%v)",
				wl.name, at, at, n, crashed))
			continue
		}
		wrep.CrashPoints++
		for _, v := range o.fs.Variants(opts.MaxTorn) {
			wrep.States++
			checkState(o, v, at-1, rep, &wrep)
		}
	}
	return wrep
}

// fail accounts one invariant violation.
func fail(rep *Report, wrep *WorkloadReport, msg string) {
	rep.FailureCount++
	wrep.Failures++
	if len(rep.Failures) < maxListedFailures {
		rep.Failures = append(rep.Failures, msg)
	}
}

// checkState recovers one materialized crash image and asserts every
// invariant. prefix is the number of trace ops applied before the
// crash: an acknowledgement at op count <= prefix is binding.
func checkState(o *oracle, v crashfs.Variant, prefix int, rep *Report, wrep *WorkloadReport) {
	ctx := fmt.Sprintf("%s@op%d/%s", o.wl.name, prefix, v.Name)
	ck := func(ok bool, format string, args ...any) bool {
		wrep.Checks++
		if !ok {
			fail(rep, wrep, ctx+": "+fmt.Sprintf(format, args...))
		}
		return ok
	}
	binding := func(ackAt map[string]int, id string) bool {
		at, acked := ackAt[id]
		if !acked || at > prefix {
			return false
		}
		if weakAt, weak := o.maybeGone[id]; weak && prefix >= weakAt {
			return false
		}
		return true
	}

	disk := o.fs.Materialize(v)

	// Journal: recovery must accept any crash image, and Dropped()
	// must agree with an independent scan of the raw bytes.
	raw, _ := disk.ReadFile(svcDir + "/journal.jsonl")
	wantKept, wantDropped := journalOracle(raw)
	j, _, err := runner.OpenJournalFS(svcDir, fingerprint, disk)
	if !ck(err == nil, "journal recovery refused a crash image: %v", err) {
		return
	}
	ck(j.Dropped() == wantDropped, "journal Dropped() = %d, oracle says %d damaged lines", j.Dropped(), wantDropped)
	ck(j.Len() == wantKept, "journal recovered %d records, oracle says the valid prefix holds %d", j.Len(), wantKept)
	recovered := map[string]json.RawMessage{}
	must(j.Each(func(id string, data json.RawMessage) error {
		recovered[id] = data
		return nil
	}))
	for id, data := range recovered { //lint:orderindependent failures are keyed by ctx+id; map order cannot change what is reported, only the order counters increment
		ref, known := o.journalRef[id]
		if !ck(known, "journal serves record %q that was never written", id) {
			continue
		}
		ck(bytes.Equal(data, ref), "journal record %q mutated: %q != %q", id, data, ref)
	}
	for _, id := range sortedKeys(o.journalAck) {
		if !binding(o.journalAck, id) {
			continue
		}
		_, ok := recovered[id]
		ck(ok, "acknowledged journal record %q lost (acked at op %d, crash after op %d)", id, o.journalAck[id], prefix)
	}
	must(j.Close())

	// Store: never serve wrong bytes; never lose an acknowledged,
	// unweakened result; keep the quarantine bounded.
	st := o.openStoreOn(disk)
	st.Audit()
	missing := []string{}
	for _, id := range sortedKeys(o.storeRef) {
		ref := o.storeRef[id]
		b, ok := st.Get(id)
		if ok {
			ck(bytes.Equal(b, ref), "store serves %q with wrong bytes: %q != %q", id, b, ref)
			continue
		}
		wrep.Checks++
		missing = append(missing, id)
		if binding(o.storeAck, id) {
			fail(rep, wrep, fmt.Sprintf("%s: acknowledged result %q lost (acked at op %d, crash after op %d)",
				ctx, id, o.storeAck[id], prefix))
		}
	}
	maxQ := o.wl.maxQuarantine
	if maxQ <= 0 {
		maxQ = service.DefaultMaxQuarantine
	}
	ck(st.Stats().QuarantineLen <= maxQ, "quarantine overflows its bound: %d > %d", st.Stats().QuarantineLen, maxQ)

	// Re-execution: a lost result regenerates (content addressing) and
	// must round-trip byte-identical to the fault-free reference.
	for _, id := range missing {
		st.Put(id, o.storeRef[id])
		b, ok := st.Get(id)
		ck(ok && bytes.Equal(b, o.storeRef[id]), "re-executed result %q does not round-trip byte-identical", id)
	}

	// Idempotence: recovering twice from the same image must leave the
	// disk byte-identical to recovering once.
	d2 := o.fs.Materialize(v)
	o.recoverOn(d2)
	s1 := d2.Snapshot()
	o.recoverOn(d2)
	s2 := d2.Snapshot()
	ck(snapshotsEqual(s1, s2), "recovery is not idempotent: second recovery changed the disk")
}

// openStoreOn opens the workload-shaped store on an arbitrary disk.
func (o *oracle) openStoreOn(disk *crashfs.FS) *service.Store {
	st, err := service.NewStore(service.StoreConfig{
		Dir:           svcDir,
		MaxResults:    o.wl.maxResults,
		MaxQuarantine: o.wl.maxQuarantine,
		Clock:         fixedClock{},
		FS:            disk,
	})
	must(err)
	return st
}

// recoverOn runs one full recovery (journal open/close + store audit)
// on disk, as a restarting daemon would.
func (o *oracle) recoverOn(disk *crashfs.FS) {
	j, _, err := runner.OpenJournalFS(svcDir, fingerprint, disk)
	must(err)
	must(j.Close())
	st := o.openStoreOn(disk)
	st.Audit()
}

// journalOracle independently derives, from the raw bytes of a
// (possibly damaged) journal file, how many records a correct
// recovery keeps and how many damaged lines it drops. It
// deliberately re-implements the commit rules with a simple line
// scan — a terminated valid header, then terminated records with
// non-empty IDs up to the first damage — so a bookkeeping bug in
// parseJournal cannot vouch for itself.
func journalOracle(b []byte) (kept, dropped int) {
	if len(b) == 0 {
		return 0, 0
	}
	segs := bytes.Split(b, []byte("\n"))
	// A trailing newline leaves one final empty segment; any other
	// final segment never got its newline and is uncommitted.
	terminated := func(i int) bool { return i < len(segs)-1 }
	ids := map[string]bool{}
	sawHeader := false
	for i, seg := range segs {
		if len(seg) == 0 {
			continue
		}
		if !sawHeader {
			var hdr struct {
				Header struct {
					Version int `json:"version"`
				} `json:"header"`
			}
			if !terminated(i) || json.Unmarshal(seg, &hdr) != nil || hdr.Header.Version == 0 {
				return 0, countDamaged(segs, i)
			}
			sawHeader = true
			continue
		}
		var rec struct {
			ID string `json:"id"`
		}
		if !terminated(i) || json.Unmarshal(seg, &rec) != nil || rec.ID == "" {
			return len(ids), countDamaged(segs, i)
		}
		ids[rec.ID] = true
	}
	return len(ids), 0
}

// countDamaged counts the non-empty segments from index from on.
func countDamaged(segs [][]byte, from int) int {
	n := 0
	for _, seg := range segs[from:] {
		if len(seg) > 0 {
			n++
		}
	}
	return n
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m { //lint:orderindependent keys are sorted before use
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// snapshotsEqual compares two disk images byte for byte.
func snapshotsEqual(a, b map[string][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for path, content := range a { //lint:orderindependent pure equality; order cannot change the result
		other, ok := b[path]
		if !ok || !bytes.Equal(content, other) {
			return false
		}
	}
	return true
}
