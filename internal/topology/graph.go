// Package topology generates and manipulates the network graphs the grid
// simulation runs on. It substitutes for the Mercator Internet-map
// extractions used by the paper: the default generator produces
// router-level graphs with power-law degree distributions (preferential
// attachment) like the Mercator heuristic discovered on the real
// Internet, and alternative Waxman and ring-of-cliques generators are
// provided for sensitivity studies.
package topology

import (
	"fmt"
	"math"
)

// Edge is one directed half of an undirected link.
type Edge struct {
	To        int
	Latency   float64 // propagation delay, simulated time units
	Bandwidth float64 // capacity, size units per time unit
}

// Graph is an undirected weighted graph in adjacency-list form. Nodes are
// dense integers [0, N).
type Graph struct {
	N   int
	Adj [][]Edge
}

// NewGraph returns an edgeless graph with n nodes.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic("topology: negative node count")
	}
	return &Graph{N: n, Adj: make([][]Edge, n)}
}

// AddEdge inserts an undirected edge u–v. Self-loops and duplicate edges
// are rejected with an error so generator bugs surface early.
func (g *Graph) AddEdge(u, v int, latency, bandwidth float64) error {
	if u < 0 || u >= g.N || v < 0 || v >= g.N {
		return fmt.Errorf("topology: edge %d-%d out of range [0,%d)", u, v, g.N)
	}
	if u == v {
		return fmt.Errorf("topology: self-loop at %d", u)
	}
	if latency <= 0 || bandwidth <= 0 {
		return fmt.Errorf("topology: edge %d-%d needs positive latency and bandwidth", u, v)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("topology: duplicate edge %d-%d", u, v)
	}
	g.Adj[u] = append(g.Adj[u], Edge{To: v, Latency: latency, Bandwidth: bandwidth})
	g.Adj[v] = append(g.Adj[v], Edge{To: u, Latency: latency, Bandwidth: bandwidth})
	return nil
}

// HasEdge reports whether an edge u–v exists.
func (g *Graph) HasEdge(u, v int) bool {
	for _, e := range g.Adj[u] {
		if e.To == v {
			return true
		}
	}
	return false
}

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return len(g.Adj[u]) }

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int {
	total := 0
	for _, a := range g.Adj {
		total += len(a)
	}
	return total / 2
}

// Connected reports whether the graph is a single connected component.
// The empty graph is vacuously connected.
func (g *Graph) Connected() bool {
	if g.N == 0 {
		return true
	}
	seen := make([]bool, g.N)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == g.N
}

// BFSOrder returns nodes in breadth-first order from src, used to place
// a cluster's resources on the routers nearest its scheduler.
func (g *Graph) BFSOrder(src int) []int {
	if src < 0 || src >= g.N {
		panic(fmt.Sprintf("topology: BFS source %d out of range", src))
	}
	order := make([]int, 0, g.N)
	seen := make([]bool, g.N)
	queue := []int{src}
	seen[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, e := range g.Adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return order
}

// DegreeStats summarizes the degree distribution: used by tests to check
// that the power-law generator actually produces heavy-tailed graphs.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	// TailRatio is maxDegree / meanDegree; heavy-tailed graphs have a
	// large ratio, near-regular graphs are close to 1.
	TailRatio float64
}

// DegreeDistribution computes summary statistics of node degrees.
func (g *Graph) DegreeDistribution() DegreeStats {
	if g.N == 0 {
		return DegreeStats{}
	}
	min, max, sum := math.MaxInt, 0, 0
	for u := 0; u < g.N; u++ {
		d := g.Degree(u)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		sum += d
	}
	mean := float64(sum) / float64(g.N)
	tr := 0.0
	if mean > 0 {
		tr = float64(max) / mean
	}
	return DegreeStats{Min: min, Max: max, Mean: mean, TailRatio: tr}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := NewGraph(g.N)
	for u := range g.Adj {
		out.Adj[u] = append([]Edge(nil), g.Adj[u]...)
	}
	return out
}
