package topology

import (
	"testing"

	"rmscale/internal/sim"
)

func TestNewGraphEmpty(t *testing.T) {
	g := NewGraph(5)
	if g.N != 5 || g.Edges() != 0 {
		t.Fatalf("NewGraph(5): N=%d edges=%d", g.N, g.Edges())
	}
}

func TestNewGraphNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGraph(-1) did not panic")
		}
	}()
	NewGraph(-1)
}

func TestAddEdgeSymmetric(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 1, 1.5, 100); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatal("degrees wrong after AddEdge")
	}
	if g.Edges() != 1 {
		t.Fatalf("Edges() = %d, want 1", g.Edges())
	}
	e := g.Adj[0][0]
	if e.To != 1 || e.Latency != 1.5 || e.Bandwidth != 100 {
		t.Fatalf("edge attributes wrong: %+v", e)
	}
}

func TestAddEdgeRejections(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 0, 1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 5, 1, 1); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := g.AddEdge(-1, 0, 1, 1); err == nil {
		t.Error("negative node accepted")
	}
	if err := g.AddEdge(0, 1, 0, 1); err == nil {
		t.Error("zero latency accepted")
	}
	if err := g.AddEdge(0, 1, 1, 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if err := g.AddEdge(0, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0, 1, 1); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestConnected(t *testing.T) {
	g := NewGraph(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	if g.Connected() {
		t.Error("graph with isolated node reported connected")
	}
	mustEdge(t, g, 2, 3)
	if !g.Connected() {
		t.Error("path graph reported disconnected")
	}
	if !NewGraph(0).Connected() {
		t.Error("empty graph should be connected")
	}
	if !NewGraph(1).Connected() {
		t.Error("single node should be connected")
	}
}

func mustEdge(t *testing.T, g *Graph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v, 1, 100); err != nil {
		t.Fatal(err)
	}
}

func TestBFSOrder(t *testing.T) {
	// 0-1, 0-2, 1-3: BFS from 0 must visit 0 first, then {1,2}, then 3.
	g := NewGraph(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 3)
	order := g.BFSOrder(0)
	if len(order) != 4 || order[0] != 0 {
		t.Fatalf("BFS order = %v", order)
	}
	pos := map[int]int{}
	for i, u := range order {
		pos[u] = i
	}
	if pos[3] < pos[1] || pos[3] < pos[2] {
		t.Fatalf("BFS visited depth-2 node early: %v", order)
	}
}

func TestBFSOrderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGraph(2).BFSOrder(9)
}

func TestDegreeDistribution(t *testing.T) {
	g := NewGraph(4) // star around 0
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 0, 3)
	ds := g.DegreeDistribution()
	if ds.Min != 1 || ds.Max != 3 || ds.Mean != 1.5 || ds.TailRatio != 2 {
		t.Fatalf("DegreeStats = %+v", ds)
	}
	if (NewGraph(0).DegreeDistribution() != DegreeStats{}) {
		t.Error("empty graph stats should be zero")
	}
}

func TestClone(t *testing.T) {
	g := NewGraph(3)
	mustEdge(t, g, 0, 1)
	c := g.Clone()
	mustEdge(t, c, 1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("Clone aliases the original adjacency")
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("Clone lost an edge")
	}
}

func stream(name string) *sim.Stream { return sim.NewSource(1234).Stream(name) }

func TestPowerLawProperties(t *testing.T) {
	g, err := PowerLaw(300, 2, DefaultLinkParams(), stream("pl"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 300 {
		t.Fatalf("N = %d", g.N)
	}
	if !g.Connected() {
		t.Fatal("power-law graph disconnected")
	}
	ds := g.DegreeDistribution()
	if ds.Min < 2 {
		t.Fatalf("min degree %d < m", ds.Min)
	}
	if ds.TailRatio < 3 {
		t.Fatalf("degree distribution not heavy-tailed: %+v", ds)
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	a, err := PowerLaw(100, 2, DefaultLinkParams(), stream("same"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := PowerLaw(100, 2, DefaultLinkParams(), stream("same"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Edges() != b.Edges() {
		t.Fatalf("same seed produced %d vs %d edges", a.Edges(), b.Edges())
	}
	for u := 0; u < a.N; u++ {
		if a.Degree(u) != b.Degree(u) {
			t.Fatalf("degree of node %d differs: %d vs %d", u, a.Degree(u), b.Degree(u))
		}
	}
}

func TestPowerLawRejectsBadArgs(t *testing.T) {
	if _, err := PowerLaw(1, 2, DefaultLinkParams(), stream("x")); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := PowerLaw(10, 0, DefaultLinkParams(), stream("x")); err == nil {
		t.Error("m=0 accepted")
	}
	bad := DefaultLinkParams()
	bad.MinLatency = 0
	if _, err := PowerLaw(10, 2, bad, stream("x")); err == nil {
		t.Error("zero latency params accepted")
	}
}

func TestWaxmanConnectedAndSized(t *testing.T) {
	g, err := Waxman(150, 0.4, 0.2, DefaultLinkParams(), stream("wx"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 150 || !g.Connected() {
		t.Fatalf("Waxman: N=%d connected=%v", g.N, g.Connected())
	}
	if g.Edges() < g.N-1 {
		t.Fatalf("Waxman has %d edges, below spanning minimum", g.Edges())
	}
}

func TestWaxmanRejectsBadArgs(t *testing.T) {
	for _, c := range []struct{ a, b float64 }{{0, 0.5}, {0.5, 0}, {1.5, 0.5}, {0.5, 1.5}} {
		if _, err := Waxman(10, c.a, c.b, DefaultLinkParams(), stream("x")); err == nil {
			t.Errorf("Waxman(alpha=%v beta=%v) accepted", c.a, c.b)
		}
	}
	if _, err := Waxman(1, 0.5, 0.5, DefaultLinkParams(), stream("x")); err == nil {
		t.Error("Waxman n=1 accepted")
	}
}

func TestRingOfCliques(t *testing.T) {
	g, err := RingOfCliques(4, 5, DefaultLinkParams(), stream("rc"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 20 || !g.Connected() {
		t.Fatalf("RingOfCliques: N=%d connected=%v", g.N, g.Connected())
	}
	// 4 cliques of C(5,2)=10 edges plus 4 ring edges.
	if g.Edges() != 44 {
		t.Fatalf("edges = %d, want 44", g.Edges())
	}
}

func TestRingOfCliquesSingle(t *testing.T) {
	g, err := RingOfCliques(1, 3, DefaultLinkParams(), stream("rc1"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.Edges() != 3 || !g.Connected() {
		t.Fatalf("single clique wrong: N=%d E=%d", g.N, g.Edges())
	}
}

func TestRingOfCliquesRejectsBadArgs(t *testing.T) {
	if _, err := RingOfCliques(0, 3, DefaultLinkParams(), stream("x")); err == nil {
		t.Error("0 cliques accepted")
	}
	if _, err := RingOfCliques(3, 0, DefaultLinkParams(), stream("x")); err == nil {
		t.Error("clique size 0 accepted")
	}
}
