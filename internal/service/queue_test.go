package service

import (
	"errors"
	"fmt"
	"testing"
)

func exp(client string, n int) *Experiment {
	return &Experiment{ID: fmt.Sprintf("%s-%d", client, n), Client: client}
}

// TestFairQueueRoundRobin pins the fairness contract: a client that
// floods the queue delays its own backlog, not other clients'.
func TestFairQueueRoundRobin(t *testing.T) {
	q := newFairQueue(16)
	// A floods with 3, then B and C each submit 1.
	for i := 0; i < 3; i++ {
		if err := q.push("A", exp("A", i), false); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	q.push("B", exp("B", 0), false)
	q.push("C", exp("C", 0), false)

	want := []string{"A-0", "B-0", "C-0", "A-1", "A-2"}
	for i, w := range want {
		e, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d: queue empty, want %s", i, w)
		}
		if e.ID != w {
			t.Fatalf("pop %d = %s, want %s (round-robin order)", i, e.ID, w)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("queue should be empty")
	}
}

// TestFairQueueMidstreamJoin pins that a client joining mid-rotation
// enters at the back of the round-robin order, not the front.
func TestFairQueueMidstreamJoin(t *testing.T) {
	q := newFairQueue(16)
	q.push("A", exp("A", 0), false)
	q.push("A", exp("A", 1), false)
	q.push("B", exp("B", 0), false)
	if e, _ := q.pop(); e.ID != "A-0" {
		t.Fatalf("pop = %s, want A-0", e.ID)
	}
	// C joins while the rotation sits between B and A.
	q.push("C", exp("C", 0), false)
	want := []string{"B-0", "A-1", "C-0"}
	for i, w := range want {
		e, ok := q.pop()
		if !ok || e.ID != w {
			t.Fatalf("pop %d = %v, want %s", i, e, w)
		}
	}
}

func TestFairQueueCapacity(t *testing.T) {
	q := newFairQueue(2)
	if err := q.push("A", exp("A", 0), false); err != nil {
		t.Fatalf("push 1: %v", err)
	}
	if err := q.push("B", exp("B", 0), false); err != nil {
		t.Fatalf("push 2: %v", err)
	}
	err := q.push("C", exp("C", 0), false)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("push at capacity = %v, want ErrSaturated", err)
	}
	if q.depth() != 2 {
		t.Fatalf("depth = %d, want 2", q.depth())
	}
	// force bypasses admission control (journal-resumed work).
	if err := q.push("C", exp("C", 1), true); err != nil {
		t.Fatalf("force push: %v", err)
	}
	if q.depth() != 3 {
		t.Fatalf("depth after force = %d, want 3", q.depth())
	}
}
