package sim

import (
	"testing"
)

// FuzzKernelOps decodes an arbitrary byte stream into a sequence of
// kernel operations — schedules at equal/past/future times, double
// cancels, steps, bounded runs, and Stop called from inside a callback
// — and asserts the kernel's core safety properties hold under any
// sequence: no panics except the documented schedule-in-the-past one,
// a monotonically non-decreasing clock, and a Pending count that never
// goes negative. Handles are only cancelled while live, honouring the
// Event handle-lifetime contract (the free list recycles fired
// structs).
//
// The seed corpus lives in testdata/fuzz/FuzzKernelOps.
func FuzzKernelOps(f *testing.F) {
	// One of each opcode, a tie burst, a cancel-twice pair, and a
	// stop-inside-callback prefix.
	f.Add([]byte{0, 1, 2, 3, 3, 4, 5, 6})
	f.Add([]byte{1, 10, 1, 10, 1, 10, 4, 4, 4})
	f.Add([]byte{6, 4, 1, 200, 5})
	f.Add([]byte{2, 50, 0, 3, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		k := NewKernel()
		k.MaxEvents = 50_000
		k.StallEvents = 10_000
		type handle struct {
			ev    *Event
			live  bool
			extra int // cancels issued after the first (no-ops)
		}
		var handles []*handle
		sched := func(at Time) {
			h := &handle{}
			h.ev = k.Schedule(at, func() { h.live = false })
			h.live = true
			handles = append(handles, h)
		}
		arg := func(i int) byte {
			if i+1 < len(data) {
				return data[i+1]
			}
			return 0
		}
		last := k.Now()
		for i := 0; i < len(data); i++ {
			op := data[i] % 7
			switch op {
			case 0: // schedule at the current time (zero-delay tie)
				sched(k.Now())
			case 1: // schedule in the future
				sched(k.Now() + Time(arg(i)) + 1)
				i++
			case 2: // schedule in the past must panic (documented model bug)
				if k.Now() > 0 {
					func() {
						defer func() {
							if recover() == nil {
								t.Fatal("schedule in the past did not panic")
							}
						}()
						k.Schedule(k.Now()-1, func() {})
					}()
				}
			case 3: // cancel a live handle; repeated cancels are no-ops
				if len(handles) > 0 {
					h := handles[int(arg(i))%len(handles)]
					i++
					if h.live {
						if h.ev.Canceled() {
							h.extra++
						} else {
							k.Cancel(h.ev)
							k.Cancel(h.ev) // cancel twice: second must be a no-op
							h.live = false
						}
					}
				}
			case 4:
				k.Step()
			case 5: // bounded run
				k.Run(k.Now() + Time(arg(i)))
				i++
			case 6: // stop from inside a callback
				k.After(Time(arg(i)%8), func() { k.Stop() })
				i++
				k.Run(k.Now() + 16)
			}
			if now := k.Now(); now < last {
				t.Fatalf("clock moved backwards: %v -> %v", last, now)
			} else {
				last = now
			}
			if k.Pending() < 0 {
				t.Fatalf("negative pending count %d", k.Pending())
			}
		}
		// Drain what's left; the kernel must terminate cleanly.
		k.MaxEvents = k.Processed() + 100_000
		k.Overflowed = false
		k.RunAll()
		if now := k.Now(); now < last {
			t.Fatalf("clock moved backwards during drain: %v -> %v", last, now)
		}
	})
}
