// Package locksafe seeds every violation of the service-layer
// locking discipline next to the sanctioned idioms it must keep
// clean. Never built by the module.
package locksafe

import (
	"os"
	"sync"
	"time"
)

// clock mirrors the service Clock seam: Sleep and After block whoever
// implements them.
type clock interface {
	After(d time.Duration) <-chan time.Time
	Sleep(d time.Duration)
}

// box declares cnt above the mutex (unguarded) and state below it
// (guarded); the sync-typed wg field synchronizes itself.
type box struct {
	cnt   int
	mu    sync.Mutex
	c     clock
	ch    chan int
	state int
	wg    sync.WaitGroup
}

func (b *box) recvHeld() {
	b.mu.Lock()
	defer b.mu.Unlock()
	<-b.c.After(time.Second) // want "channel receive while b\\.mu is held"
}

func (b *box) sendHeld() {
	b.mu.Lock()
	b.ch <- 1 // want "channel send while b\\.mu is held"
	b.mu.Unlock()
}

func (b *box) selectHeld(done chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want "select while b\\.mu is held"
	case <-b.c.After(time.Second):
	case <-done:
	}
}

func (b *box) sleepHeld() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.c.Sleep(time.Second) // want "locksafe\\.clock\\.Sleep blocks while b\\.mu is held"
}

func (b *box) ioHeld() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, err := os.ReadFile("x") // want "os\\.ReadFile performs IO while b\\.mu is held"
	return err
}

func (b *box) indirectHeld() {
	b.mu.Lock()
	defer b.mu.Unlock()
	touch() // want "call to locksafe\\.touch blocks \\(os\\.ReadFile performs IO\\) while b\\.mu is held"
}

func touch() {
	_, _ = os.ReadFile("y")
}

func (b *box) waitHeld() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.wg.Wait() // want "sync\\.WaitGroup\\.Wait blocks while b\\.mu is held"
}

func (b *box) relockHeld() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.depth() // want "call to locksafe\\.box\\.depth locks b\\.mu again while it is already held \\(self-deadlock\\)"
}

func (b *box) depth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// leakReturn returns with the lock held on one path and has no
// deferred unlock to catch it.
func (b *box) leakReturn(x int) int {
	b.mu.Lock()
	if x > 0 {
		return x // want "return while b\\.mu is held and no unlock is deferred"
	}
	b.mu.Unlock()
	return 0
}

// earlyUnlock is the sanctioned unlock-then-return early-exit idiom:
// the branch-local unlock opens a hole, so nothing is flagged.
func (b *box) earlyUnlock(x int) int {
	b.mu.Lock()
	if x > 0 {
		b.mu.Unlock()
		return x
	}
	b.mu.Unlock()
	return 0
}

// condWait is the sanctioned condition-variable pattern: Cond.Wait
// releases the mutex while parked, so it is never a blocking call.
func (b *box) condWait(c *sync.Cond) {
	c.L.Lock()
	for b.cnt == 0 {
		c.Wait()
	}
	c.L.Unlock()
}

func (b *box) unguarded() int {
	return b.state // want "b\\.state is guarded by mu \\(declared below it\\) but unguarded accesses it without holding the lock"
}

func (b *box) guardedOK() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// peekLocked relies on the caller's lock, per the *Locked convention.
func (b *box) peekLocked() int { return b.state }

// setup runs before any goroutine can see b; the annotation sits on
// the declaration — the anchor for guarded-field diagnostics — so one
// line covers every access in the body.
//
//lint:allow locksafe fixture: construction happens before concurrency
func (b *box) setup() {
	b.state = 1
	b.ch = make(chan int, 1)
}
