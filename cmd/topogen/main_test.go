package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nodes", "120", "-clusters", "4", "-size", "8"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"nodes        120", "connected    true", "schedulers", "cluster 3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestGenerators(t *testing.T) {
	for _, gen := range []string{"powerlaw", "waxman", "cliques", "transitstub"} {
		var buf bytes.Buffer
		if err := run([]string{"-gen", gen, "-nodes", "100", "-clusters", "3", "-size", "5"}, &buf); err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		if !strings.Contains(buf.String(), "connected    true") {
			t.Fatalf("%s produced disconnected graph", gen)
		}
	}
}

func TestDotOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nodes", "60", "-clusters", "3", "-size", "4",
		"-estimators", "2", "-format", "dot"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph grid {", "color=red", "color=blue", "color=green", "--"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dot output missing %q", want)
		}
	}
}

func TestErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-gen", "bogus"}, &buf); err == nil {
		t.Error("unknown generator accepted")
	}
	if err := run([]string{"-format", "bogus"}, &buf); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run([]string{"-nodes", "5", "-clusters", "10", "-size", "10"}, &buf); err == nil {
		t.Error("over-full mapping accepted")
	}
}
