package main

import (
	"bytes"
	"testing"

	"rmscale/internal/lint"
)

// TestRegistersAllFiveAnalyzers pins the multichecker's roster: the
// suite the binary runs must contain exactly the five determinism and
// model-coverage analyzers, in their documented order.
func TestRegistersAllFiveAnalyzers(t *testing.T) {
	want := []string{"nowallclock", "noglobalrand", "mapiterorder", "nokernelgoroutines", "rmsexhaustive"}
	suite := lint.Suite(lint.DefaultConfig)
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}

// TestSelfClean runs the driver over this package: the lint gate the
// CI applies to the whole module must at minimum hold for the linter
// itself.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the dependency graph")
	}
	var buf bytes.Buffer
	n, err := lint.RunDir(".", []string{"."}, lint.DefaultConfig, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("rmslint is not self-clean:\n%s", buf.String())
	}
}
