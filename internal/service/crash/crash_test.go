package crash

import (
	"strings"
	"testing"
)

// TestHarnessPassesOnCurrentCode is the headline result: every crash
// prefix of every canonical workload, in every torn/garbled variant,
// recovers without violating a single durability invariant.
func TestHarnessPassesOnCurrentCode(t *testing.T) {
	rep, err := Run(Options{Sector: 32, MaxTorn: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("crash enumeration found %d invariant violations; first: %v",
			rep.FailureCount, rep.Failures[:min(3, len(rep.Failures))])
	}
	if len(rep.Workloads) != 5 {
		t.Fatalf("ran %d workloads, want 5", len(rep.Workloads))
	}
	if rep.CrashPoints < 100 || rep.Checks < 1000 {
		t.Fatalf("enumeration suspiciously small: %d crash points, %d checks", rep.CrashPoints, rep.Checks)
	}
	for _, w := range rep.Workloads {
		if w.CrashPoints != w.Ops+1 {
			t.Fatalf("workload %s: %d crash points for %d ops, want ops+1", w.Name, w.CrashPoints, w.Ops)
		}
		if w.States < w.CrashPoints {
			t.Fatalf("workload %s: fewer states (%d) than crash points (%d)", w.Name, w.States, w.CrashPoints)
		}
	}
}

// TestHarnessDetectsMissingDirSync is the harness's own regression
// proof: on a filesystem that silently drops directory fsyncs — the
// failure mode of WriteFileAtomic without the parent-dir fsync, or of
// a journal created without syncing its directory — the enumeration
// MUST report lost acknowledged results. A harness that stays green
// under that fault could not have vouched for the fix.
func TestHarnessDetectsMissingDirSync(t *testing.T) {
	rep, err := Run(Options{Sector: 32, MaxTorn: 1, SimulateDirSyncLoss: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("harness stayed green with directory fsyncs dropped; it cannot detect missing parent-dir syncs")
	}
	lost := false
	for _, f := range rep.Failures {
		if strings.Contains(f, "lost") {
			lost = true
			break
		}
	}
	if !lost {
		t.Fatalf("expected acknowledged-data-loss failures, got: %v", rep.Failures[:min(5, len(rep.Failures))])
	}
}

// TestWorkloadFilter pins the -workload CLI knob.
func TestWorkloadFilter(t *testing.T) {
	rep, err := Run(Options{Workloads: []string{"journal-burst"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Workloads) != 1 || rep.Workloads[0].Name != "journal-burst" {
		t.Fatalf("filter ran %+v, want exactly journal-burst", rep.Workloads)
	}
	if !rep.OK {
		t.Fatalf("journal-burst alone failed: %v", rep.Failures)
	}
	if _, err := Run(Options{Workloads: []string{"no-such"}}); err == nil {
		t.Fatal("unknown workload name silently ignored")
	}
}
