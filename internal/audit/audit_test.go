package audit_test

import (
	"strings"
	"testing"

	"rmscale/internal/audit"
	"rmscale/internal/grid"
	"rmscale/internal/rms"
	"rmscale/internal/topology"
)

func testConfig() grid.Config {
	cfg := grid.DefaultConfig()
	cfg.Seed = 7
	cfg.Spec = topology.GridSpec{Clusters: 2, ClusterSize: 4, Estimators: 1}
	cfg.Horizon = 800
	cfg.Drain = 400
	cfg.Workload.Clusters = 2
	cfg.Workload.Horizon = 800
	cfg.Workload.ArrivalRate = 0.7 * 8 / 524.2
	return cfg
}

func newEngine(t *testing.T) *grid.Engine {
	t.Helper()
	e, err := grid.New(testConfig(), rms.NewLowest())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCleanRunPassesAllChecks(t *testing.T) {
	e := newEngine(t)
	a, err := audit.Attach(e, audit.Config{Mode: audit.Record})
	if err != nil {
		t.Fatal(err)
	}
	sum := e.Run()
	if !a.OK() {
		t.Fatalf("fault-free run violated invariants: %v", a.ViolationStrings())
	}
	if a.Checks() < 64 {
		t.Fatalf("only %d checkpoints ran, want >= 64 over the window", a.Checks())
	}
	if sum.AuditChecks != a.Checks() || sum.Violations != 0 || sum.FirstViolation != "" {
		t.Fatalf("summary audit fields wrong: checks=%d violations=%d first=%q",
			sum.AuditChecks, sum.Violations, sum.FirstViolation)
	}
	if a.Fingerprint() != "" {
		t.Fatalf("clean run has fingerprint %q, want empty", a.Fingerprint())
	}
	if a.Err() != nil {
		t.Fatalf("clean run reports error: %v", a.Err())
	}
}

func TestAuditingDoesNotPerturbTheRun(t *testing.T) {
	plain := newEngine(t).Run()
	e := newEngine(t)
	if _, err := audit.Attach(e, audit.Config{Mode: audit.Record}); err != nil {
		t.Fatal(err)
	}
	audited := e.Run()
	// Blank the audit-only fields; everything the model computed must be
	// identical, because audit checkpoints are pure reads.
	audited.AuditChecks = plain.AuditChecks
	if plain != audited {
		t.Fatalf("auditing perturbed the simulation:\nplain:   %+v\naudited: %+v", plain, audited)
	}
}

func TestOffModeAttachesNothing(t *testing.T) {
	e := newEngine(t)
	a, err := audit.Attach(e, audit.Config{Mode: audit.Off})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if a.Checks() != 0 {
		t.Fatalf("Off auditor ran %d checkpoints", a.Checks())
	}
	if e.Metrics.AuditChecks != 0 {
		t.Fatalf("Off auditor published %d checks into metrics", e.Metrics.AuditChecks)
	}
}

func TestRecordModeDetectsCorruption(t *testing.T) {
	e := newEngine(t)
	e.K.Schedule(300, func() { e.Metrics.RMSOverhead = -1e6 })
	a, err := audit.Attach(e, audit.Config{Mode: audit.Record})
	if err != nil {
		t.Fatal(err)
	}
	sum := e.Run()
	if a.OK() {
		t.Fatal("negative G went undetected")
	}
	if got := a.Violations()[0].Check; got != audit.CheckAccounting {
		t.Fatalf("first violation check = %q, want %q", got, audit.CheckAccounting)
	}
	if sum.Violations != len(a.Violations()) || sum.FirstViolation != a.Violations()[0].String() {
		t.Fatalf("summary does not mirror the auditor: %d vs %d, %q vs %q",
			sum.Violations, len(a.Violations()), sum.FirstViolation, a.Violations()[0])
	}
	if !strings.Contains(sum.String(), "AUDIT") {
		t.Fatalf("summary string hides the violations: %s", sum)
	}
	// Record mode lets the run finish.
	if e.K.Now() < testConfig().Horizon {
		t.Fatalf("record mode stopped the run early at t=%v", e.K.Now())
	}
}

func TestFailFastHaltsWithDump(t *testing.T) {
	e := newEngine(t)
	e.K.Schedule(300, func() { e.Metrics.JobsCompleted += e.Metrics.JobsArrived + 1 })
	a, err := audit.Attach(e, audit.Config{Mode: audit.FailFast})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !a.Halted() {
		t.Fatal("fail-fast did not halt on a phantom completion")
	}
	if e.K.Now() >= testConfig().Horizon {
		t.Fatalf("fail-fast let the run reach the horizon (t=%v)", e.K.Now())
	}
	dump := a.Dump()
	for _, want := range []string{"fail-fast", "violation:", "kernel:", "schedulers (", "metrics:", "fault counters:"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("diagnostic dump lacks %q:\n%s", want, dump)
		}
	}
}

func TestAttachGuards(t *testing.T) {
	if _, err := audit.Attach(nil, audit.Config{Mode: audit.Record}); err == nil {
		t.Fatal("nil engine accepted")
	}
	e := newEngine(t)
	if _, err := audit.Attach(e, audit.Config{Mode: audit.Record}); err != nil {
		t.Fatal(err)
	}
	if _, err := audit.Attach(e, audit.Config{Mode: audit.Record}); err == nil {
		t.Fatal("double attach accepted")
	}
	e.Run()
	e2 := newEngine(t)
	e2.Run()
	if _, err := audit.Attach(e2, audit.Config{Mode: audit.Record}); err == nil {
		t.Fatal("attach after the run accepted")
	}
}

func TestFingerprintIsStable(t *testing.T) {
	vs := []string{"t=1.0 accounting: G is negative: -1", "t=2.0 drain: negative unfinished count -1"}
	a, b := audit.Fingerprint(vs), audit.Fingerprint(append([]string(nil), vs...))
	if a == "" || a != b {
		t.Fatalf("fingerprint unstable: %q vs %q", a, b)
	}
	if audit.Fingerprint(nil) != "" {
		t.Fatal("empty violation list must fingerprint to empty")
	}
	if audit.Fingerprint(vs[:1]) == a {
		t.Fatal("different violation lists share a fingerprint")
	}
}

func TestModeRoundTrip(t *testing.T) {
	for _, m := range []audit.Mode{audit.Off, audit.Record, audit.FailFast} {
		got, err := audit.ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := audit.ParseMode("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
}
