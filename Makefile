GO ?= go

.PHONY: check build vet lint test race bench

# The gate CI runs: vet + determinism lint + full test suite + race.
check: vet lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The custom determinism/model-coverage analyzers (see DESIGN.md,
# "Determinism invariants"). Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/rmslint ./...

test: build
	$(GO) test ./...

# Race-check the whole module; -short keeps the smoke-fidelity
# experiment runs out of the race build, which would otherwise
# dominate the wall clock.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
