package sim

import (
	"fmt"
	"io"
	"sort"
	"sync" //lint:allow nokernelgoroutines the mutex guards debug-trace buffers a monitoring goroutine may read mid-run; it protects no simulation-visible state
)

// Tracer collects named simulation events for debugging and for tests
// that assert on event sequences. It is deliberately simple: the grid
// engine and policies call Trace(kind, detail) on an optional tracer;
// a nil *Tracer is a no-op, so production runs carry zero cost.
type Tracer struct {
	mu     sync.Mutex
	k      *Kernel
	events []TraceEvent
	counts map[string]int
	limit  int
}

// TraceEvent is one recorded event.
type TraceEvent struct {
	At     Time
	Kind   string
	Detail string
}

// NewTracer attaches a tracer to a kernel. limit bounds the number of
// retained events (older events are dropped, counts keep accumulating);
// zero means 64k.
func NewTracer(k *Kernel, limit int) *Tracer {
	if limit <= 0 {
		limit = 64 * 1024
	}
	return &Tracer{k: k, counts: make(map[string]int), limit: limit}
}

// On reports whether the tracer is recording. Hot paths guard their
// Tracef calls with it: a Tracef call site materializes its variadic
// argument slice (and boxes non-pointer arguments) before the nil check
// inside Tracef can run, so an unguarded call allocates even when
// tracing is off. `if t.On() { t.Tracef(...) }` keeps a disabled-tracer
// run allocation-free. Safe on a nil receiver.
func (t *Tracer) On() bool { return t != nil }

// Trace records an event at the current simulated time. Safe on a nil
// receiver.
func (t *Tracer) Trace(kind, detail string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counts[kind]++
	if len(t.events) >= t.limit {
		// Drop the oldest half rather than shifting one by one.
		copy(t.events, t.events[len(t.events)/2:])
		t.events = t.events[:len(t.events)-len(t.events)/2]
	}
	t.events = append(t.events, TraceEvent{At: t.k.Now(), Kind: kind, Detail: detail})
}

// Tracef records a formatted event. Safe on a nil receiver.
func (t *Tracer) Tracef(kind, format string, args ...any) {
	if t == nil {
		return
	}
	t.Trace(kind, fmt.Sprintf(format, args...))
}

// Count returns how many events of the kind were recorded (including
// any that aged out of the retained window).
func (t *Tracer) Count(kind string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[kind]
}

// Events returns a copy of the retained events in time order.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// Kinds returns the recorded kinds, sorted.
func (t *Tracer) Kinds() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.counts))
	for k := range t.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dump writes the retained events, one per line.
func (t *Tracer) Dump(w io.Writer) error {
	for _, e := range t.Events() {
		if _, err := fmt.Fprintf(w, "%12.3f %-20s %s\n", e.At, e.Kind, e.Detail); err != nil {
			return err
		}
	}
	return nil
}
