package service

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"time"
)

// Execution supervision: the layer between a worker shard and the
// executor that keeps one misbehaving experiment from taking the
// daemon down with it. Four disciplines, composed in supervisedExec:
//
//   - panic isolation — an executor panic becomes a failed-with-stack
//     result for that experiment; the shard survives and keeps
//     draining the queue;
//   - execution deadlines — a run that exceeds its per-spec budget is
//     cancelled (context) and failed; a truly hung executor is
//     orphaned on a buffered channel rather than wedging the shard;
//   - bounded retries — transient failures re-run with exponential
//     backoff and deterministic jitter on the injectable Clock, up to
//     MaxAttempts;
//   - a circuit breaker — consecutive supervised failures past a
//     threshold open the breaker, and new submissions are shed with
//     503 + Retry-After until a cooldown passes; a half-open probe
//     then decides between closing it and re-arming the cooldown.

// execKind classifies one supervised attempt for the stats surface.
type execKind int

const (
	execOK execKind = iota
	execErr
	execPanic
	execTimeout
)

// outcome is what one executor attempt produced.
type outcome struct {
	b    []byte
	err  error
	kind execKind
}

// runOnce executes one attempt with panic isolation and the per-spec
// deadline. The executor runs in its own goroutine writing to a
// buffered channel: if it overruns the deadline it is cancelled and,
// should it ignore cancellation entirely, parked — the shard moves on.
func (d *Daemon) runOnce(e *Experiment, attempt int) outcome {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	//lint:allow nokernelgoroutines the outcome channel joins the supervised executor goroutine to its shard; buffered so an abandoned run can still complete its send and be collected
	done := make(chan outcome, 1)
	//lint:allow nokernelgoroutines supervision needs the executor on its own goroutine so a deadline can abandon a hung run without wedging the shard; the simulation inside stays single-threaded
	go func() {
		defer func() {
			if r := recover(); r != nil {
				//lint:allow nokernelgoroutines delivering the recovered panic to the shard; service-layer join, no simulation state
				done <- outcome{
					err:  fmt.Errorf("service: executor panicked on %s: %v\n%s", e.Spec, r, debug.Stack()),
					kind: execPanic,
				}
			}
		}()
		b, err := d.exec(ctx, e.Spec, d.expDir(e.ID))
		if err != nil {
			done <- outcome{err: err, kind: execErr} //lint:allow nokernelgoroutines service-layer join of the executor goroutine
			return
		}
		done <- outcome{b: b, kind: execOK} //lint:allow nokernelgoroutines service-layer join of the executor goroutine
	}()
	timeout := d.execTimeout(e.Spec)
	if timeout <= 0 {
		return <-done
	}
	//lint:allow nokernelgoroutines racing the executor against its deadline is the supervision layer's one legitimate select; simulations below it stay single-threaded
	select {
	case o := <-done:
		return o
	case <-d.clock.After(timeout):
		cancel() // a context-respecting executor unblocks promptly
		return outcome{
			err:  fmt.Errorf("service: %s exceeded its %v execution deadline (attempt %d)", e.Spec, timeout, attempt),
			kind: execTimeout,
		}
	}
}

// execTimeout is the per-spec execution deadline: sim runs get the
// configured budget, case/churn runs (whole tuned curves, orders of
// magnitude heavier) get eight times it. Zero disables deadlines.
func (d *Daemon) execTimeout(spec ExperimentSpec) time.Duration {
	if d.cfg.ExecTimeout <= 0 {
		return 0
	}
	if spec.Kind == KindCase || spec.Kind == KindChurn {
		return 8 * d.cfg.ExecTimeout
	}
	return d.cfg.ExecTimeout
}

// supervisedExec runs the experiment under full supervision and
// returns the final payload or the last attempt's error.
func (d *Daemon) supervisedExec(shard int, e *Experiment) ([]byte, error) {
	attempts := d.cfg.MaxAttempts
	if attempts <= 0 {
		attempts = 1
	}
	for attempt := 1; ; attempt++ {
		o := d.runOnce(e, attempt)
		d.mu.Lock()
		switch o.kind {
		case execPanic:
			d.stats.ExecPanics++
		case execTimeout:
			d.stats.ExecTimeouts++
		}
		d.mu.Unlock()
		if o.kind == execOK {
			return o.b, nil
		}
		if attempt >= attempts {
			return nil, o.err
		}
		delay := retryDelay(e.ID, attempt, d.cfg.RetryBackoff)
		d.mu.Lock()
		d.stats.Retries++
		d.mu.Unlock()
		d.logEvent("exec_retry", map[string]any{
			"shard": shard, "id": e.ID, "attempt": attempt, "of": attempts,
			"backoff_ms": float64(delay.Microseconds()) / 1000, "error": o.err.Error(),
		})
		d.clock.Sleep(delay)
	}
}

// retryDelay is exponential backoff with deterministic jitter: the
// base doubles per attempt (capped at maxRetryBackoff) and up to half
// of it again is added from a hash of (experiment, attempt) — spread
// without randomness, reproducible in tests and replays.
func retryDelay(id string, attempt int, base time.Duration) time.Duration {
	if base <= 0 {
		base = defaultRetryBackoff
	}
	d := base << uint(attempt-1)
	if d > maxRetryBackoff || d <= 0 {
		d = maxRetryBackoff
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", id, attempt)
	jitter := time.Duration(h.Sum64() % uint64(d/2+1))
	return d + jitter
}

const (
	defaultRetryBackoff = 100 * time.Millisecond
	maxRetryBackoff     = 5 * time.Second
)

// breaker is the daemon's circuit breaker over supervised execution
// outcomes. Not self-locking: the daemon's mutex guards every call.
type breaker struct {
	threshold int           // consecutive failures that open it; <= 0 disables
	cooldown  time.Duration // how long it sheds before a half-open probe
	consec    int
	open      bool
	openUntil time.Time
	trips     int64
}

// allow reports whether new work may be admitted at now. An open
// breaker past its cooldown admits (half-open): the next supervised
// outcome decides whether it closes or re-arms.
func (b *breaker) allow(now time.Time) bool {
	if b.threshold <= 0 || !b.open {
		return true
	}
	return !now.Before(b.openUntil)
}

// record feeds one supervised execution outcome into the breaker.
func (b *breaker) record(ok bool, now time.Time) {
	if b.threshold <= 0 {
		return
	}
	if ok {
		b.consec = 0
		b.open = false
		return
	}
	b.consec++
	if b.consec < b.threshold {
		return
	}
	if !b.open || !now.Before(b.openUntil) {
		// A fresh trip, or a failed half-open probe re-arming the
		// cooldown — both are a transition into shedding worth counting.
		b.trips++
	}
	b.open = true
	b.openUntil = now.Add(b.cooldown)
}

// retryAfter is the whole-second hint for shed submissions.
func (b *breaker) retryAfter(now time.Time) int {
	if !b.open || !now.Before(b.openUntil) {
		return retryAfterSec
	}
	sec := int((b.openUntil.Sub(now) + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}
