package stats

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteChartBasics(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleSet().WriteChart(&buf, ChartOptions{Width: 40, Height: 10}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure X", "legend:", "*=CENTRAL", "o=LOWEST", "x: k"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Plot area height + title + axis + labels + legend.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 10+4+1 {
		t.Fatalf("chart has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("marks missing from plot")
	}
}

func TestWriteChartLogY(t *testing.T) {
	ss := &SeriesSet{Title: "log", XLabel: "k", YLabel: "G"}
	ss.Add(Series{Name: "big", X: []float64{1, 2, 3}, Y: []float64{1, 100, 10000}})
	var buf bytes.Buffer
	if err := ss.WriteChart(&buf, ChartOptions{LogY: true, Width: 30, Height: 8}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "log10 G") {
		t.Fatal("log axis label missing")
	}
	// log10(10000) = 4 should appear as the top axis value.
	if !strings.Contains(buf.String(), "4 |") {
		t.Fatalf("top label wrong:\n%s", buf.String())
	}
}

func TestWriteChartLogYSkipsNonPositive(t *testing.T) {
	ss := &SeriesSet{Title: "bad", XLabel: "k", YLabel: "y"}
	ss.Add(Series{Name: "zeros", X: []float64{1, 2}, Y: []float64{0, -5}})
	var buf bytes.Buffer
	if err := ss.WriteChart(&buf, ChartOptions{LogY: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no plottable points") {
		t.Fatalf("expected empty-plot message:\n%s", buf.String())
	}
}

func TestWriteChartEmpty(t *testing.T) {
	var buf bytes.Buffer
	ss := &SeriesSet{Title: "empty"}
	if err := ss.WriteChart(&buf, ChartOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no series") {
		t.Fatal("empty chart message missing")
	}
}

func TestWriteChartSinglePoint(t *testing.T) {
	ss := &SeriesSet{Title: "dot", XLabel: "k", YLabel: "y"}
	ss.Add(Series{Name: "p", X: []float64{5}, Y: []float64{7}})
	var buf bytes.Buffer
	if err := ss.WriteChart(&buf, ChartOptions{Width: 20, Height: 6}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Fatal("single point not plotted")
	}
}

func TestWriteChartFlatSeries(t *testing.T) {
	ss := &SeriesSet{Title: "flat", XLabel: "k", YLabel: "y"}
	ss.Add(Series{Name: "c", X: []float64{1, 2, 3}, Y: []float64{4, 4, 4}})
	var buf bytes.Buffer
	// Degenerate Y range must not divide by zero.
	if err := ss.WriteChart(&buf, ChartOptions{Width: 20, Height: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestChartOptionsDefaults(t *testing.T) {
	o := ChartOptions{}.withDefaults()
	if o.Width != 64 || o.Height != 20 {
		t.Fatalf("defaults = %+v", o)
	}
	o = ChartOptions{Width: 3, Height: 2}.withDefaults()
	if o.Width < 16 || o.Height < 6 {
		t.Fatalf("minimums not enforced: %+v", o)
	}
}
