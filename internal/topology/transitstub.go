package topology

import (
	"fmt"

	"rmscale/internal/sim"
)

// TransitStubParams configures the GT-ITM-style hierarchical generator:
// a ring-connected core of transit domains, each transit node anchoring
// a few stub domains — the other standard Internet model of the paper's
// era, complementing the flat power-law generator.
type TransitStubParams struct {
	// TransitDomains is the number of core domains (>= 1).
	TransitDomains int
	// TransitSize is the number of routers per transit domain (>= 1).
	TransitSize int
	// StubsPerTransitNode is how many stub domains hang off each
	// transit router (>= 0).
	StubsPerTransitNode int
	// StubSize is the number of routers per stub domain (>= 1).
	StubSize int
	// ExtraEdgeProb adds intra-domain shortcut edges with this
	// probability per node pair, giving path diversity.
	ExtraEdgeProb float64
}

// DefaultTransitStubParams yields a ~200-node three-level topology.
func DefaultTransitStubParams() TransitStubParams {
	return TransitStubParams{
		TransitDomains:      3,
		TransitSize:         4,
		StubsPerTransitNode: 2,
		StubSize:            8,
		ExtraEdgeProb:       0.15,
	}
}

// Nodes returns the total node count the parameters produce.
func (p TransitStubParams) Nodes() int {
	transit := p.TransitDomains * p.TransitSize
	return transit + transit*p.StubsPerTransitNode*p.StubSize
}

// Validate reports the first bad parameter.
func (p TransitStubParams) Validate() error {
	switch {
	case p.TransitDomains < 1:
		return fmt.Errorf("topology: TransitDomains must be >= 1, got %d", p.TransitDomains)
	case p.TransitSize < 1:
		return fmt.Errorf("topology: TransitSize must be >= 1, got %d", p.TransitSize)
	case p.StubsPerTransitNode < 0:
		return fmt.Errorf("topology: negative StubsPerTransitNode %d", p.StubsPerTransitNode)
	case p.StubsPerTransitNode > 0 && p.StubSize < 1:
		return fmt.Errorf("topology: StubSize must be >= 1 when stubs exist, got %d", p.StubSize)
	case p.StubSize < 0:
		return fmt.Errorf("topology: negative StubSize %d", p.StubSize)
	case p.ExtraEdgeProb < 0 || p.ExtraEdgeProb > 1:
		return fmt.Errorf("topology: ExtraEdgeProb %v outside [0,1]", p.ExtraEdgeProb)
	}
	return nil
}

// TransitStub generates the hierarchical topology. Transit links get
// the low end of the latency range and the high end of the bandwidth
// range (backbone links); stub links the opposite (edge links).
func TransitStub(p TransitStubParams, lp LinkParams, st *sim.Stream) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := lp.validate(); err != nil {
		return nil, err
	}
	g := NewGraph(p.Nodes())
	midLat := (lp.MinLatency + lp.MaxLatency) / 2
	midBW := (lp.MinBandwidth + lp.MaxBandwidth) / 2
	backbone := func() (float64, float64) {
		return st.Uniform(lp.MinLatency, midLat), st.Uniform(midBW, lp.MaxBandwidth)
	}
	edge := func() (float64, float64) {
		return st.Uniform(midLat, lp.MaxLatency), st.Uniform(lp.MinBandwidth, midBW)
	}
	addEdge := func(u, v int, lat, bw float64) error {
		if u == v || g.HasEdge(u, v) {
			return nil
		}
		return g.AddEdge(u, v, lat, bw)
	}

	// Transit domains: ring inside each domain, domains joined in a
	// ring through their first routers.
	transitNode := func(d, i int) int { return d*p.TransitSize + i }
	for d := 0; d < p.TransitDomains; d++ {
		for i := 0; i < p.TransitSize; i++ {
			lat, bw := backbone()
			if p.TransitSize > 1 {
				if err := addEdge(transitNode(d, i), transitNode(d, (i+1)%p.TransitSize), lat, bw); err != nil {
					return nil, err
				}
			}
			// Shortcuts.
			for j := i + 2; j < p.TransitSize; j++ {
				if st.Bool(p.ExtraEdgeProb) {
					lat, bw := backbone()
					if err := addEdge(transitNode(d, i), transitNode(d, j), lat, bw); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	for d := 0; d < p.TransitDomains && p.TransitDomains > 1; d++ {
		lat, bw := backbone()
		if err := addEdge(transitNode(d, 0), transitNode((d+1)%p.TransitDomains, 0), lat, bw); err != nil {
			return nil, err
		}
	}

	// Stub domains: a chain per stub with shortcuts, anchored to its
	// transit router.
	next := p.TransitDomains * p.TransitSize
	for d := 0; d < p.TransitDomains; d++ {
		for i := 0; i < p.TransitSize; i++ {
			anchor := transitNode(d, i)
			for s := 0; s < p.StubsPerTransitNode; s++ {
				base := next
				next += p.StubSize
				for n := 0; n < p.StubSize; n++ {
					lat, bw := edge()
					if n == 0 {
						if err := addEdge(anchor, base, lat, bw); err != nil {
							return nil, err
						}
					} else {
						if err := addEdge(base+n-1, base+n, lat, bw); err != nil {
							return nil, err
						}
					}
					for m := n + 2; m < p.StubSize; m++ {
						if st.Bool(p.ExtraEdgeProb) {
							lat, bw := edge()
							if err := addEdge(base+n, base+m, lat, bw); err != nil {
								return nil, err
							}
						}
					}
				}
			}
		}
	}
	return g, nil
}
