package lint_test

import (
	"go/token"
	"go/types"
	"os/exec"
	"strings"
	"testing"

	"rmscale/internal/lint"
	"rmscale/internal/lint/load"
)

// TestConfigMatchesModule keeps DefaultConfig honest: every concrete
// package it names must exist in the module (no stale entries rotting
// as packages move), and the enum it describes must actually declare
// the constants every switch is required to cover.
func TestConfigMatchesModule(t *testing.T) {
	out, err := exec.Command("go", "list", "rmscale/...").Output()
	if err != nil {
		t.Fatal(err)
	}
	exists := map[string]bool{}
	for _, p := range strings.Fields(string(out)) {
		exists[p] = true
	}

	cfg := lint.DefaultConfig
	check := func(list []string, name string) {
		t.Helper()
		if len(list) == 0 {
			t.Errorf("config %s is empty", name)
		}
		for _, e := range list {
			if strings.HasSuffix(e, "/...") {
				root := strings.TrimSuffix(e, "/...")
				found := exists[root]
				for p := range exists {
					if strings.HasPrefix(p, root+"/") {
						found = true
					}
				}
				if !found {
					t.Errorf("config %s entry %q matches no module package", name, e)
				}
				continue
			}
			if !exists[e] {
				t.Errorf("config %s entry %q is stale: no such package", name, e)
			}
		}
	}
	check(cfg.SimVisible, "SimVisible")
	check(cfg.Kernel, "Kernel")
	check(cfg.Coordinator, "Coordinator")
	check(cfg.MapOrder, "MapOrder")
	check(cfg.Exhaustive, "Exhaustive")
	check(cfg.HotAlloc, "HotAlloc")
	check(cfg.LockSafe, "LockSafe")
	exemptEntries := make([]string, 0, len(cfg.Exempt))
	for e, why := range cfg.Exempt {
		exemptEntries = append(exemptEntries, e)
		if strings.TrimSpace(why) == "" {
			t.Errorf("config Exempt entry %q has no reason", e)
		}
	}
	check(exemptEntries, "Exempt")

	// The satellite claim that MapOrder/Exhaustive miss the service
	// sub-packages is pinned false here: the "rmscale/..." subtree
	// entries must keep covering them even if the lists are reworked.
	for _, p := range []string{"rmscale/internal/service/chaos", "rmscale/internal/service/loadgen"} {
		for _, l := range []struct {
			name string
			list []string
		}{{"MapOrder", cfg.MapOrder}, {"Exhaustive", cfg.Exhaustive}} {
			if !coveredBy(l.list, p) {
				t.Errorf("config %s does not cover %s", l.name, p)
			}
		}
	}

	if !exists[cfg.EnumPkg] {
		t.Fatalf("config EnumPkg %q is stale: no such package", cfg.EnumPkg)
	}
	if len(cfg.EnumConstants) != 7 {
		t.Errorf("the paper evaluates seven models; config lists %d enum constants", len(cfg.EnumConstants))
	}

	// Type-check the enum package and verify the configured constants
	// really are constants of the configured type.
	fset := token.NewFileSet()
	pkgs, err := load.Module(fset, "../..", cfg.EnumPkg)
	if err != nil {
		t.Fatal(err)
	}
	var enumPkg *types.Package
	for _, p := range pkgs {
		if p.Path == cfg.EnumPkg {
			enumPkg = p.Pkg
		}
	}
	if enumPkg == nil {
		t.Fatalf("load.Module did not return %s", cfg.EnumPkg)
	}
	tobj := enumPkg.Scope().Lookup(cfg.EnumType)
	if tobj == nil {
		t.Fatalf("config EnumType %s.%s does not exist", cfg.EnumPkg, cfg.EnumType)
	}
	if _, ok := tobj.(*types.TypeName); !ok {
		t.Fatalf("%s.%s is not a type", cfg.EnumPkg, cfg.EnumType)
	}
	declared := map[string]bool{}
	for _, name := range enumPkg.Scope().Names() {
		obj := enumPkg.Scope().Lookup(name)
		c, ok := obj.(*types.Const)
		if !ok {
			continue
		}
		if named, ok := types.Unalias(c.Type()).(*types.Named); ok && named.Obj() == tobj {
			declared[name] = true
		}
	}
	for _, want := range cfg.EnumConstants {
		if !declared[want] {
			t.Errorf("config enum constant %q is not declared as a %s.%s constant",
				want, cfg.EnumPkg, cfg.EnumType)
		}
	}
	// And the reverse: a constant added to the enum must be added to
	// the config (and therefore to every switch) too.
	for name := range declared {
		found := false
		for _, c := range cfg.EnumConstants {
			if c == name {
				found = true
			}
		}
		if !found {
			t.Errorf("enum constant %s.%s is missing from config EnumConstants", cfg.EnumPkg, name)
		}
	}
}

// coveredBy mirrors the config's appliesTo semantics for the test's
// own assertions: exact entries and "m/..." subtree entries.
func coveredBy(entries []string, pkg string) bool {
	for _, e := range entries {
		if e == pkg {
			return true
		}
		if root, ok := strings.CutSuffix(e, "/..."); ok {
			if pkg == root || strings.HasPrefix(pkg, root+"/") {
				return true
			}
		}
	}
	return false
}

// TestInternalPackagesClassified forces a conscious decision per
// package: every rmscale/internal package must either appear in a
// curated analyzer list (SimVisible, Kernel, LockSafe — the wildcard
// lists don't count) or carry an explicit Exempt entry with a reason.
// Adding a package to the module without classifying it fails here.
func TestInternalPackagesClassified(t *testing.T) {
	out, err := exec.Command("go", "list", "rmscale/internal/...").Output()
	if err != nil {
		t.Fatal(err)
	}
	cfg := lint.DefaultConfig
	for _, pkg := range strings.Fields(string(out)) {
		curated, exempt := cfg.Classified(pkg)
		switch {
		case !curated && !exempt:
			t.Errorf("package %s is in no curated analyzer list and has no Exempt entry; classify it in lint.DefaultConfig", pkg)
		case curated && exempt:
			t.Errorf("package %s is both in a curated analyzer list and Exempt; pick one", pkg)
		}
	}
}
