// Package crashfs is an in-memory filesystem that models POSIX crash
// and durability semantics for exhaustive crash-consistency testing,
// in the spirit of ALICE and CrashMonkey. It implements fsutil.FS, so
// the journal and result store run against it unmodified, and it
// records a linearized trace of every durability-relevant operation.
//
// The model, per file: content has a buffered state (what readers see
// now) and a synced state (what survives a crash); Sync promotes
// buffered to synced. Per directory: the entry table likewise has a
// live and a synced snapshot; creating, renaming or removing an entry
// is immediately visible but volatile until SyncDir on the parent
// commits the entry table. Rename is atomic — a crash never leaves
// half a rename — but the renamed entry can revert to its pre-rename
// binding if the parent directory was never synced. Directory
// creation (MkdirAll) is deliberately modeled as durable immediately:
// the module creates directories once at startup and always before
// the first write into them, so enumerating their loss adds states
// without adding information.
//
// Crash injection is prefix-exact: New with Options.CrashAt = n
// aborts the n-th recorded op (1-based) by panicking with a sentinel
// that Catch recovers, leaving exactly n-1 ops applied. After the
// crash every subsequent operation fails with an error instead of
// panicking again, so cleanup code unwinding through defers cannot
// mutate the post-crash state. Materialize then builds the disk as it
// could look after the crash, in several variants: the pessimal image
// (all unsynced state lost), the flushed image (the kernel wrote
// everything back just in time), and — when the crashed op left an
// unsynced append tail — torn images keeping 1..k sectors of the tail
// plus a garbled image whose final sector holds corrupted bytes.
package crashfs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	//lint:allow nokernelgoroutines crashfs is shared by the component under test and the harness checking it; a mutex over the op trace is test plumbing, not simulation concurrency
	"sync"

	"rmscale/internal/fsutil"
)

// OpKind enumerates the durability-relevant operations the trace
// records. Close and Chmod are deliberately not ops: neither changes
// what survives a crash.
type OpKind int

const (
	OpCreate OpKind = iota
	OpWrite
	OpSync
	OpTruncate
	OpRename
	OpRemove
	OpSyncDir
)

func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpTruncate:
		return "truncate"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpSyncDir:
		return "syncdir"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one recorded trace entry.
type Op struct {
	Kind OpKind
	Path string // primary path (rename: destination in Aux)
	Aux  string // rename destination
	N    int    // write length / truncate size
}

func (o Op) String() string {
	switch o.Kind {
	case OpRename:
		return fmt.Sprintf("rename %s -> %s", o.Path, o.Aux)
	case OpWrite:
		return fmt.Sprintf("write %s (%d bytes)", o.Path, o.N)
	case OpTruncate:
		return fmt.Sprintf("truncate %s to %d", o.Path, o.N)
	}
	return fmt.Sprintf("%s %s", o.Kind, o.Path)
}

// Options parameterize a crashfs instance.
type Options struct {
	// Sector is the torn-append granularity in bytes; <= 0 means 64.
	Sector int
	// CrashAt, when > 0, crashes the filesystem in place of the
	// CrashAt-th recorded op (1-based): exactly CrashAt-1 ops apply.
	// 0 or negative never crashes.
	CrashAt int
	// DropDirSyncs makes SyncDir record its op but persist nothing —
	// simulating a filesystem (or a buggy caller) on which directory
	// entries never become durable. The crash harness uses it to
	// prove it would catch removal of the parent-dir fsync in
	// fsutil.WriteAtomic.
	DropDirSyncs bool
}

// inode is one file: buffered content and the synced prefix of it
// that survives a crash.
type inode struct {
	data   []byte
	synced []byte
	perm   os.FileMode
}

// dirNode is one directory: the live entry table and the snapshot of
// it committed by the last SyncDir.
type dirNode struct {
	entries map[string]*inode
	synced  map[string]*inode
}

func newDirNode() *dirNode {
	return &dirNode{entries: map[string]*inode{}, synced: map[string]*inode{}}
}

// FS is the simulated filesystem. It is safe for concurrent use,
// though crash enumeration is only meaningful over a deterministic
// single-goroutine workload.
type FS struct {
	opts Options

	mu        sync.Mutex
	dirs      map[string]*dirNode
	ops       []Op
	crashed   bool
	lastWrite *inode // target of the most recent OpWrite, for torn variants
}

// New returns an empty crashfs with options applied.
func New(opts Options) *FS {
	if opts.Sector <= 0 {
		opts.Sector = 64
	}
	return &FS{opts: opts, dirs: map[string]*dirNode{"/": newDirNode()}}
}

// crashError is the sentinel panic payload Catch recovers.
type crashError struct{ op Op }

func (e *crashError) Error() string {
	return fmt.Sprintf("crashfs: simulated crash at %s", e.op)
}

// Catch runs fn and recovers the simulated crash, reporting whether
// one occurred. Panics other than the crash sentinel propagate.
func Catch(fn func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*crashError); ok {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	fn()
	return false
}

// errCrashed is what every operation returns once the crash fired.
var errCrashed = fmt.Errorf("crashfs: filesystem crashed")

// step records op, or fires the armed crash in its place. Callers
// hold f.mu (released by their defers as the panic unwinds).
func (f *FS) step(op Op) {
	if f.opts.CrashAt > 0 && len(f.ops)+1 == f.opts.CrashAt {
		f.crashed = true
		panic(&crashError{op})
	}
	f.ops = append(f.ops, op)
}

func clean(name string) string { return filepath.Clean(name) }

// dir returns the directory holding name, or nil.
func (f *FS) dir(name string) *dirNode { return f.dirs[filepath.Dir(name)] }

func notExist(name string) error {
	return fmt.Errorf("crashfs: %s: %w", name, os.ErrNotExist)
}

// OpCount reports how many ops the trace holds.
func (f *FS) OpCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ops)
}

// Ops returns a copy of the recorded trace.
func (f *FS) Ops() []Op {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Op, len(f.ops))
	copy(out, f.ops)
	return out
}

// Crashed reports whether the armed crash has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// file is an open handle; operations route back through the FS so the
// trace stays linearized.
type file struct {
	fs   *FS
	ino  *inode
	name string
}

func (h *file) Name() string { return h.name }
func (h *file) Close() error { return nil }

func (h *file) Write(b []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, errCrashed
	}
	h.fs.step(Op{Kind: OpWrite, Path: h.name, N: len(b)})
	h.ino.data = append(h.ino.data, b...)
	h.fs.lastWrite = h.ino
	return len(b), nil
}

func (h *file) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return errCrashed
	}
	h.fs.step(Op{Kind: OpSync, Path: h.name})
	h.ino.synced = append([]byte(nil), h.ino.data...)
	return nil
}

func (h *file) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return errCrashed
	}
	h.fs.step(Op{Kind: OpTruncate, Path: h.name, N: int(size)})
	if int(size) < len(h.ino.data) {
		h.ino.data = append([]byte(nil), h.ino.data[:size]...)
	}
	return nil
}

// OpenFile implements fsutil.FS for the flag subset the module uses.
func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (fsutil.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, errCrashed
	}
	name = clean(name)
	d := f.dir(name)
	if d == nil {
		return nil, notExist(filepath.Dir(name))
	}
	base := filepath.Base(name)
	ino := d.entries[base]
	if ino == nil {
		if flag&os.O_CREATE == 0 {
			return nil, notExist(name)
		}
		f.step(Op{Kind: OpCreate, Path: name})
		ino = &inode{perm: perm}
		d.entries[base] = ino
	} else if flag&os.O_TRUNC != 0 && len(ino.data) > 0 {
		f.step(Op{Kind: OpTruncate, Path: name})
		ino.data = nil
	}
	return &file{fs: f, ino: ino, name: name}, nil
}

// ReadFile returns the buffered content of name.
func (f *FS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, errCrashed
	}
	name = clean(name)
	d := f.dir(name)
	if d == nil {
		return nil, notExist(name)
	}
	ino := d.entries[filepath.Base(name)]
	if ino == nil {
		return nil, notExist(name)
	}
	return append([]byte(nil), ino.data...), nil
}

// ReadDir lists files and immediate subdirectories of dir, sorted.
func (f *FS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, errCrashed
	}
	dir = clean(dir)
	d := f.dirs[dir]
	if d == nil {
		return nil, notExist(dir)
	}
	var names []string
	for name := range d.entries { //lint:orderindependent names are sorted before returning
		names = append(names, name)
	}
	for p := range f.dirs { //lint:orderindependent names are sorted before returning
		if filepath.Dir(p) == dir && p != dir {
			names = append(names, filepath.Base(p))
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll creates dir and missing parents; modeled durable
// immediately (see the package comment).
func (f *FS) MkdirAll(dir string, perm os.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return errCrashed
	}
	dir = clean(dir)
	for p := dir; ; p = filepath.Dir(p) {
		if f.dirs[p] == nil {
			f.dirs[p] = newDirNode()
		}
		if p == filepath.Dir(p) {
			break
		}
	}
	return nil
}

// Rename atomically rebinds oldpath's inode to newpath. The rebinding
// is volatile until the parent directories are synced.
func (f *FS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return errCrashed
	}
	oldpath, newpath = clean(oldpath), clean(newpath)
	od, nd := f.dir(oldpath), f.dir(newpath)
	if od == nil || od.entries[filepath.Base(oldpath)] == nil {
		return notExist(oldpath)
	}
	if nd == nil {
		return notExist(filepath.Dir(newpath))
	}
	if f.dirs[newpath] != nil {
		return fmt.Errorf("crashfs: rename %s onto directory %s", oldpath, newpath)
	}
	f.step(Op{Kind: OpRename, Path: oldpath, Aux: newpath})
	ino := od.entries[filepath.Base(oldpath)]
	delete(od.entries, filepath.Base(oldpath))
	nd.entries[filepath.Base(newpath)] = ino
	return nil
}

// Remove deletes the file entry; the deletion is volatile until the
// parent directory is synced.
func (f *FS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return errCrashed
	}
	name = clean(name)
	d := f.dir(name)
	if d == nil || d.entries[filepath.Base(name)] == nil {
		return notExist(name)
	}
	f.step(Op{Kind: OpRemove, Path: name})
	delete(d.entries, filepath.Base(name))
	return nil
}

// Chmod sets permission bits; not a durability op, so not traced.
func (f *FS) Chmod(name string, mode os.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return errCrashed
	}
	name = clean(name)
	d := f.dir(name)
	if d == nil || d.entries[filepath.Base(name)] == nil {
		return notExist(name)
	}
	d.entries[filepath.Base(name)].perm = mode
	return nil
}

// SyncDir commits dir's entry table: entries created, renamed or
// removed before this point survive a crash (their content still only
// to its own synced extent).
func (f *FS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return errCrashed
	}
	dir = clean(dir)
	d := f.dirs[dir]
	if d == nil {
		return notExist(dir)
	}
	f.step(Op{Kind: OpSyncDir, Path: dir})
	if f.opts.DropDirSyncs {
		return nil
	}
	snap := make(map[string]*inode, len(d.entries))
	for name, ino := range d.entries { //lint:orderindependent copying a map into a map; no order-sensitive output
		snap[name] = ino
	}
	d.synced = snap
	return nil
}

// WriteFileAtomic runs the production atomic-write sequence over this
// FS, so the crash harness explores exactly the op pattern RealFS
// issues.
func (f *FS) WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return fsutil.WriteAtomic(f, path, data, perm)
}

// AppendSync runs the production append sequence over this FS.
func (f *FS) AppendSync(h fsutil.File, b []byte) error { return fsutil.Append(h, b) }

// Variant names one materializable post-crash disk image.
type Variant struct {
	// Name labels the image in reports: "pessimal", "flushed",
	// "torn-<j>", "garbled".
	Name string

	keepUnsynced bool
	tornSectors  int
	garble       bool
}

// Variants enumerates the post-crash images worth checking for the
// current trace: pessimal and flushed always, and when the most
// recently written file carries an unsynced append tail, torn images
// keeping 1..min(k, maxTorn) sectors of it plus a garbled image whose
// final sector is corrupted. maxTorn <= 0 means 3.
func (f *FS) Variants(maxTorn int) []Variant {
	if maxTorn <= 0 {
		maxTorn = 3
	}
	vs := []Variant{{Name: "pessimal"}, {Name: "flushed", keepUnsynced: true}}
	f.mu.Lock()
	tail := len(f.tornTailLocked())
	f.mu.Unlock()
	if tail == 0 {
		return vs
	}
	sectors := (tail + f.opts.Sector - 1) / f.opts.Sector
	for j := 1; j <= sectors && j <= maxTorn; j++ {
		vs = append(vs, Variant{Name: fmt.Sprintf("torn-%d", j), tornSectors: j})
	}
	return append(vs, Variant{Name: "garbled", tornSectors: sectors, garble: true})
}

// tornTailLocked returns the unsynced append tail of the most
// recently written file, or nil when there is none or the file was
// rewritten rather than appended (a torn image of a rewrite is not an
// append prefix, and the pessimal/flushed pair already brackets it).
func (f *FS) tornTailLocked() []byte {
	ino := f.lastWrite
	if ino == nil || len(ino.data) <= len(ino.synced) {
		return nil
	}
	for i := range ino.synced {
		if ino.data[i] != ino.synced[i] {
			return nil
		}
	}
	return ino.data[len(ino.synced):]
}

// Materialize builds a fresh, fully-synced crashfs holding the disk
// image the variant describes for the current crash state. The
// original is left untouched, so one crash state can materialize any
// number of variants independently.
func (f *FS) Materialize(v Variant) *FS {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := New(Options{Sector: f.opts.Sector})
	tornTail := f.tornTailLocked()
	for dpath, d := range f.dirs { //lint:orderindependent building one map-backed FS from another; no order-sensitive output
		nd := newDirNode()
		out.dirs[dpath] = nd
		src := d.synced
		if v.keepUnsynced {
			src = d.entries
		}
		for name, ino := range src { //lint:orderindependent building one map-backed FS from another; no order-sensitive output
			content := ino.synced
			if v.keepUnsynced {
				content = ino.data
			} else if v.tornSectors > 0 && ino == f.lastWrite && len(tornTail) > 0 {
				keep := v.tornSectors * f.opts.Sector
				if keep > len(tornTail) {
					keep = len(tornTail)
				}
				torn := append(append([]byte(nil), ino.synced...), tornTail[:keep]...)
				if v.garble && keep > 0 {
					g := f.opts.Sector
					if g > keep {
						g = keep
					}
					for i := len(torn) - g; i < len(torn); i++ {
						torn[i] ^= 0xA5
					}
				}
				content = torn
			}
			c := append([]byte(nil), content...)
			nd.entries[name] = &inode{data: c, synced: append([]byte(nil), c...), perm: ino.perm}
		}
		for name, ino := range nd.entries { //lint:orderindependent copying a map into a map; no order-sensitive output
			nd.synced[name] = ino
		}
	}
	return out
}

// Snapshot returns path -> buffered content for every file, the
// byte-level disk image used by the recovery-idempotence check.
func (f *FS) Snapshot() map[string][]byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := map[string][]byte{}
	for dpath, d := range f.dirs { //lint:orderindependent building a map keyed by full path; no order-sensitive output
		for name, ino := range d.entries { //lint:orderindependent building a map keyed by full path; no order-sensitive output
			out[filepath.Join(dpath, name)] = append([]byte(nil), ino.data...)
		}
	}
	return out
}
