package rms

import (
	"rmscale/internal/grid"
	"rmscale/internal/sim"
)

// Message kinds for RESERVE.
const (
	msgReserveRegister = iota
	msgReserveProbe
	msgReserveProbeReply
	msgReserveCancel
)

// reservation is one registered offer of remote capacity.
type reservation struct {
	from int
	at   sim.Time
}

// reserveProbe carries a probe and its reply.
type reserveProbe struct {
	id   int
	load float64
}

// reserveState is the per-scheduler state of the RESERVE model.
type reserveState struct {
	reservations  []reservation // received offers, oldest first
	lastAdvertise sim.Time
	advertised    bool
	nextProbe     int
	pending       map[int]*grid.JobCtx // probe id -> waiting job
}

// Reserve is the paper's RESERVE model: when a scheduler's average
// cluster load falls below T_l it registers reservations at L_p remote
// schedulers. A scheduler receiving a REMOTE job while its own average
// load is above T_l probes the most recent reservation holder and
// transfers the job there if that cluster's load is still below the
// threshold; otherwise it cancels its reservations and keeps the job.
type Reserve struct{}

// NewReserve returns the RESERVE model.
func NewReserve() *Reserve { return &Reserve{} }

// Name implements grid.Policy.
func (*Reserve) Name() string { return "RESERVE" }

// Central implements grid.Policy.
func (*Reserve) Central() bool { return false }

// UsesMiddleware implements grid.Policy.
func (*Reserve) UsesMiddleware() bool { return false }

// Attach initializes reservation books.
func (*Reserve) Attach(e *grid.Engine) {
	for c := 0; c < e.Clusters(); c++ {
		e.Scheduler(c).State = &reserveState{pending: make(map[int]*grid.JobCtx)}
	}
}

// OnTick advertises reservations while the local cluster is
// underloaded. Reservations carry a TTL, so a persistently underloaded
// cluster must refresh them: it re-advertises once half the TTL has
// elapsed — the recurring registration traffic that makes RESERVE's
// overhead grow with L_p (Figure 5).
func (*Reserve) OnTick(s *grid.Scheduler) {
	st := s.State.(*reserveState)
	proto := s.Engine().Cfg.Protocol
	// Checking the condition costs one scan of the local view.
	s.ExecDecision(len(s.LocalResources()), func() {
		if s.AvgLocalLoad() >= proto.ThresholdLoad {
			st.advertised = false
			return
		}
		if st.advertised && s.Now()-st.lastAdvertise < proto.ReservationTTL/2 {
			return // live reservations are still out there
		}
		st.advertised = true
		st.lastAdvertise = s.Now()
		for _, p := range s.RandomPeers(proto.Lp) {
			s.SendPolicy(p, msgReserveRegister, nil)
		}
	})
}

// OnJob routes REMOTE jobs through the reservation book.
func (*Reserve) OnJob(s *grid.Scheduler, ctx *grid.JobCtx) {
	if mustPlaceLocally(s, ctx) {
		placeLocally(s, ctx)
		return
	}
	st := s.State.(*reserveState)
	proto := s.Engine().Cfg.Protocol
	s.ExecDecision(len(s.LocalResources()), func() {
		st.expire(s.Now(), proto.ReservationTTL)
		if s.AvgLocalLoad() <= proto.ThresholdLoad || len(st.reservations) == 0 {
			placeLocally(s, ctx)
			return
		}
		// Probe the most recent reservation.
		r := st.reservations[len(st.reservations)-1]
		id := st.nextProbe
		st.nextProbe++
		st.pending[id] = ctx
		s.SendPolicy(r.from, msgReserveProbe, reserveProbe{id: id})
	})
}

// OnMessage handles registrations, probes, replies and cancellations.
func (*Reserve) OnMessage(s *grid.Scheduler, m *grid.Message) {
	st := s.State.(*reserveState)
	proto := s.Engine().Cfg.Protocol
	switch m.Kind {
	case msgReserveRegister:
		st.reservations = append(st.reservations, reservation{from: m.From, at: s.Now()})
		const maxBook = 64
		if len(st.reservations) > maxBook {
			st.reservations = st.reservations[len(st.reservations)-maxBook:]
		}
	case msgReserveProbe:
		p := m.Payload.(reserveProbe)
		s.ExecDecision(len(s.LocalResources()), func() {
			s.SendPolicy(m.From, msgReserveProbeReply, reserveProbe{id: p.id, load: s.AvgLocalLoad()})
		})
	case msgReserveProbeReply:
		p := m.Payload.(reserveProbe)
		ctx, ok := st.pending[p.id]
		if !ok {
			return
		}
		delete(st.pending, p.id)
		if p.load < proto.ThresholdLoad {
			s.TransferJob(ctx, m.From)
			return
		}
		// The reservation was stale: cancel all reservations (the
		// paper cancels the book) and keep the job.
		for _, r := range st.reservations {
			s.SendPolicy(r.from, msgReserveCancel, nil)
		}
		st.reservations = nil
		placeLocally(s, ctx)
	case msgReserveCancel:
		// Our advertised capacity was rejected: allow re-advertising.
		st.advertised = false
	}
}

// OnStatus implements grid.Policy; RESERVE reacts on its tick.
func (*Reserve) OnStatus(*grid.Scheduler, []int) {}

// expire drops reservations older than the TTL.
func (st *reserveState) expire(now sim.Time, ttl float64) {
	keep := st.reservations[:0]
	for _, r := range st.reservations {
		if now-r.at <= ttl {
			keep = append(keep, r)
		}
	}
	st.reservations = keep
}
