package grid

import (
	"testing"
)

// Allocation budget for the engine's protocol loops. The kernel itself
// is allocation-free in steady state (internal/sim's alloc tests); what
// remains per event here is the engine layer — deferred-delivery
// closures, job envelopes, policy hooks. This pins that remainder to a
// fixed per-event budget so map churn or per-message slice allocations
// creeping back into the scheduler/estimator/update paths fail the
// suite on any machine, without a benchmark diff.

func runAllocProbe(t *testing.T, estimators int) (perEvent float64) {
	t.Helper()
	run := func() uint64 {
		cfg := testConfig()
		cfg.Spec.Estimators = estimators
		eng, err := New(cfg, &stubPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return eng.K.Processed()
	}
	events := run()
	if events == 0 {
		t.Fatal("engine processed no events")
	}
	allocs := testing.AllocsPerRun(2, func() { run() })
	return allocs / float64(events)
}

func TestEngineAllocBudgetDirectUpdates(t *testing.T) {
	const budget = 3.0
	if per := runAllocProbe(t, 0); per > budget {
		t.Errorf("direct-update engine run allocates %.2f/event, budget %.2f", per, budget)
	}
}

func TestEngineAllocBudgetEstimatorDigests(t *testing.T) {
	const budget = 3.0
	if per := runAllocProbe(t, 4); per > budget {
		t.Errorf("estimator-digest engine run allocates %.2f/event, budget %.2f", per, budget)
	}
}
