package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CENTRAL", "LOWEST", "Sy-I"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("list missing %s:\n%s", want, buf.String())
		}
	}
}

func TestRunSimulation(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-model", "LOWEST", "-clusters", "4", "-size", "5",
		"-horizon", "800"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"model      LOWEST", "summary", "jobs", "messages"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithFaults(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-model", "CENTRAL", "-clusters", "4", "-size", "5",
		"-horizon", "800", "-mtbf", "500", "-loss", "0.1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "model      CENTRAL") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestUnknownModel(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-model", "NOPE"}, &buf); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}
