package rms

import (
	"testing"

	"rmscale/internal/grid"
	"rmscale/internal/topology"
	"rmscale/internal/workload"
)

// protoEngine builds a small quiet grid (negligible background arrivals)
// so tests can inject jobs and drive protocols deterministically.
func protoEngine(t *testing.T, p grid.Policy, clusters, size int) *grid.Engine {
	t.Helper()
	cfg := grid.DefaultConfig()
	cfg.Spec = topology.GridSpec{Clusters: clusters, ClusterSize: size}
	cfg.Workload.Clusters = clusters
	cfg.Workload.ArrivalRate = 1e-6 // effectively no background jobs
	cfg.Workload.Horizon = 100
	cfg.Horizon = 100
	cfg.Drain = 3000
	e, err := grid.New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// localJob crafts a LOCAL-class job envelope.
func localJob(id int, cluster int) *grid.JobCtx {
	return &grid.JobCtx{
		Job: &workload.Job{
			ID: id, Runtime: 100, Requested: 150, Benefit: 5,
			Partition: 1, Cluster: cluster, Class: workload.Local,
		},
		Origin: cluster,
	}
}

// remoteJob crafts a REMOTE-class job envelope (runtime above T_CPU).
func remoteJob(id int, cluster int) *grid.JobCtx {
	return &grid.JobCtx{
		Job: &workload.Job{
			ID: id, Runtime: 900, Requested: 1200, Benefit: 5,
			Partition: 1, Cluster: cluster, Class: workload.Remote,
		},
		Origin: cluster,
	}
}

// loadCluster pushes the believed load of every resource in a cluster.
func loadCluster(e *grid.Engine, cluster int, load float64) {
	s := e.Scheduler(cluster)
	for _, rid := range s.LocalResources() {
		s.InjectView(rid, load, e.K.Now())
	}
}

func TestLowestLocalJobStaysLocal(t *testing.T) {
	p := NewLowest()
	e := protoEngine(t, p, 3, 3)
	p.OnJob(e.Scheduler(0), localJob(1, 0))
	e.K.Run(3000)
	if e.Metrics.JobTransfers != 0 {
		t.Fatal("LOCAL job was transferred")
	}
	if e.Metrics.PolicyMsgs != 0 {
		t.Fatal("LOCAL job triggered polls")
	}
	if e.Metrics.JobsCompleted != 1 {
		t.Fatalf("completed = %d", e.Metrics.JobsCompleted)
	}
}

func TestLowestRemoteJobPollsLp(t *testing.T) {
	p := NewLowest()
	e := protoEngine(t, p, 4, 3)
	// Make the home cluster look fully loaded so the job moves.
	loadCluster(e, 0, 5)
	p.OnJob(e.Scheduler(0), remoteJob(1, 0))
	e.K.Run(5000)
	lp := e.Cfg.Protocol.Lp
	// Lp polls + Lp replies, at minimum.
	if e.Metrics.PolicyMsgs < 2*lp {
		t.Fatalf("policy messages = %d, want >= %d", e.Metrics.PolicyMsgs, 2*lp)
	}
	if e.Metrics.JobTransfers != 1 {
		t.Fatalf("transfers = %d, want 1 (loaded home cluster)", e.Metrics.JobTransfers)
	}
	if e.Metrics.JobsCompleted != 1 {
		t.Fatalf("completed = %d", e.Metrics.JobsCompleted)
	}
}

func TestLowestPrefersLocalOnTie(t *testing.T) {
	p := NewLowest()
	e := protoEngine(t, p, 4, 3)
	// Everything idle: remote minima equal local minimum, stay home.
	p.OnJob(e.Scheduler(0), remoteJob(1, 0))
	e.K.Run(5000)
	if e.Metrics.JobTransfers != 0 {
		t.Fatal("idle tie should stay local")
	}
}

func TestLowestTransferredJobPlacedImmediately(t *testing.T) {
	p := NewLowest()
	e := protoEngine(t, p, 3, 3)
	ctx := remoteJob(1, 0)
	ctx.Hops = 1 // already transferred once
	p.OnJob(e.Scheduler(1), ctx)
	e.K.Run(3000)
	if e.Metrics.PolicyMsgs != 0 {
		t.Fatal("transferred job re-polled")
	}
	if e.Metrics.JobsCompleted != 1 {
		t.Fatal("transferred job not placed")
	}
}

func TestReserveAdvertiseAndTransfer(t *testing.T) {
	p := NewReserve()
	e := protoEngine(t, p, 3, 3)
	// Cluster 1 is idle: its tick advertises reservations. Force the
	// tick directly for determinism, and probe before the reservation
	// TTL (400) expires.
	p.OnTick(e.Scheduler(1))
	e.K.Run(50)
	if e.Metrics.PolicyMsgs == 0 {
		t.Fatal("underloaded cluster did not advertise")
	}
	// Load cluster 0's view so it is above T_l and must use the book.
	loadCluster(e, 0, 4)
	before := e.Metrics.JobTransfers
	p.OnJob(e.Scheduler(0), remoteJob(1, 0))
	e.K.Run(6000)
	if e.Metrics.JobTransfers != before+1 {
		t.Fatalf("reservation probe did not move the job (transfers %d)", e.Metrics.JobTransfers)
	}
	if e.Metrics.JobsCompleted != 1 {
		t.Fatalf("completed = %d", e.Metrics.JobsCompleted)
	}
}

func TestReserveStaysLocalWhenUnderloaded(t *testing.T) {
	p := NewReserve()
	e := protoEngine(t, p, 3, 3)
	// Home cluster idle: avg <= T_l, keep the job local.
	p.OnJob(e.Scheduler(0), remoteJob(1, 0))
	e.K.Run(4000)
	if e.Metrics.JobTransfers != 0 {
		t.Fatal("underloaded cluster exported a job")
	}
}

func TestAuctionFlowMovesWaitingJob(t *testing.T) {
	p := NewAuction()
	e := protoEngine(t, p, 3, 3)
	// Overload cluster 1 with real queued jobs so it can bid and lose
	// a waiting job.
	s1 := e.Scheduler(1)
	rid := s1.LocalResources()[0]
	for i := 0; i < 3; i++ {
		s1.Dispatch(localJob(10+i, 1), rid)
	}
	e.K.Run(50)
	// Cluster 0 sees an idle resource and a fresh update triggers it.
	p.OnStatus(e.Scheduler(0), []int{e.Scheduler(0).LocalResources()[0]})
	e.K.Run(8000)
	if e.Metrics.JobTransfers == 0 {
		t.Fatal("auction moved nothing")
	}
	if e.Metrics.PolicyMsgs < 3 {
		t.Fatalf("auction exchanged only %d messages", e.Metrics.PolicyMsgs)
	}
}

func TestAuctionNoBidsNoAward(t *testing.T) {
	p := NewAuction()
	e := protoEngine(t, p, 3, 3)
	// All clusters idle: invitations go out, nobody has load above
	// T_l, so no bids and no transfers.
	p.OnStatus(e.Scheduler(0), []int{e.Scheduler(0).LocalResources()[0]})
	e.K.Run(5000)
	if e.Metrics.JobTransfers != 0 {
		t.Fatal("award without bids")
	}
}

func TestSenderInitiatedQueryReplyTransfer(t *testing.T) {
	p := NewSenderInitiated()
	e := protoEngine(t, p, 4, 3)
	loadCluster(e, 0, 5) // home looks terrible
	p.OnJob(e.Scheduler(0), remoteJob(1, 0))
	e.K.Run(8000)
	lp := e.Cfg.Protocol.Lp
	if e.Metrics.PolicyMsgs < 2*lp {
		t.Fatalf("S-I exchanged %d messages, want >= %d", e.Metrics.PolicyMsgs, 2*lp)
	}
	if e.Metrics.JobTransfers != 1 {
		t.Fatalf("S-I transfers = %d, want 1", e.Metrics.JobTransfers)
	}
	if e.Metrics.JobsCompleted != 1 {
		t.Fatal("job not completed")
	}
}

func TestSenderInitiatedStaysLocalWhenBest(t *testing.T) {
	p := NewSenderInitiated()
	e := protoEngine(t, p, 4, 3)
	// Make every remote cluster look loaded via their own views: they
	// report ATT from their (loaded) believed state.
	for c := 1; c < 4; c++ {
		loadCluster(e, c, 5)
	}
	p.OnJob(e.Scheduler(0), remoteJob(1, 0))
	e.K.Run(8000)
	if e.Metrics.JobTransfers != 0 {
		t.Fatal("S-I moved a job to worse clusters")
	}
}

func TestReceiverInitiatedVolunteerPullsJob(t *testing.T) {
	p := NewReceiverInitiated()
	e := protoEngine(t, p, 3, 3)
	// Overload every resource of cluster 1 (real queues + believed
	// views), so its local ATT clearly exceeds an idle volunteer's.
	s1 := e.Scheduler(1)
	id := 10
	for _, rid := range s1.LocalResources() {
		for i := 0; i < 3; i++ {
			s1.Dispatch(localJob(id, 1), rid)
			id++
		}
	}
	e.K.Run(50)
	// Cluster 0 is idle; its periodic check volunteers. Drive the tick
	// until a volunteer lands on cluster 1 (peers are random).
	for i := 0; i < 8 && e.Metrics.JobTransfers == 0; i++ {
		p.OnTick(e.Scheduler(0))
		p.OnTick(e.Scheduler(2))
		e.K.Run(e.K.Now() + 3000)
	}
	if e.Metrics.JobTransfers == 0 {
		t.Fatal("R-I never pulled a waiting job")
	}
}

func TestReceiverInitiatedQuietWhenBusy(t *testing.T) {
	p := NewReceiverInitiated()
	e := protoEngine(t, p, 3, 3)
	loadCluster(e, 0, 2) // utilization 1.0 >= delta
	p.OnTick(e.Scheduler(0))
	e.K.Run(2000)
	if e.Metrics.PolicyMsgs != 0 {
		t.Fatal("busy cluster volunteered")
	}
}

func TestSymmetricUsesAdvertisement(t *testing.T) {
	p := NewSymmetric()
	e := protoEngine(t, p, 3, 3)
	// Cluster 1 advertises (it is idle).
	p.OnTick(e.Scheduler(1))
	e.K.Run(2000)
	msgsAfterAds := e.Metrics.PolicyMsgs
	if msgsAfterAds == 0 {
		t.Fatal("no advertisements sent")
	}
	// Load the home cluster; its next REMOTE job should use an ad when
	// one arrived (no polling), or fall back to polling otherwise.
	loadCluster(e, 0, 5)
	p.OnJob(e.Scheduler(0), remoteJob(1, 0))
	e.K.Run(9000)
	if e.Metrics.JobsCompleted != 1 {
		t.Fatalf("completed = %d", e.Metrics.JobsCompleted)
	}
	if e.Metrics.JobTransfers != 1 {
		t.Fatalf("Sy-I transfers = %d, want 1", e.Metrics.JobTransfers)
	}
}

func TestSymmetricFallsBackToPolling(t *testing.T) {
	p := NewSymmetric()
	e := protoEngine(t, p, 4, 3)
	loadCluster(e, 0, 5)
	// No advertisements on hand: S-I style polling must happen.
	p.OnJob(e.Scheduler(0), remoteJob(1, 0))
	e.K.Run(9000)
	lp := e.Cfg.Protocol.Lp
	if e.Metrics.PolicyMsgs < 2*lp {
		t.Fatalf("fallback exchanged %d messages, want >= %d", e.Metrics.PolicyMsgs, 2*lp)
	}
	if e.Metrics.JobTransfers != 1 {
		t.Fatalf("transfers = %d", e.Metrics.JobTransfers)
	}
}

func TestCentralSingleScheduler(t *testing.T) {
	p := NewCentral()
	e := protoEngine(t, p, 4, 3)
	if e.Clusters() != 1 {
		t.Fatalf("CENTRAL engine has %d clusters", e.Clusters())
	}
	if len(e.Resources) != 12 {
		t.Fatalf("resources = %d, want 12", len(e.Resources))
	}
	p.OnJob(e.Scheduler(0), remoteJob(1, 0))
	p.OnJob(e.Scheduler(0), localJob(2, 0))
	e.K.Run(5000)
	if e.Metrics.JobsCompleted != 2 {
		t.Fatalf("completed = %d", e.Metrics.JobsCompleted)
	}
	if e.Metrics.PolicyMsgs != 0 || e.Metrics.JobTransfers != 0 {
		t.Fatal("CENTRAL exchanged protocol traffic")
	}
}

// TestDecisionChargesGrowWithClusterSize pins the cost model: a central
// decision over many candidates must cost more than a small-cluster
// decision.
func TestDecisionChargesGrowWithClusterSize(t *testing.T) {
	small := protoEngine(t, NewCentral(), 2, 2)
	big := protoEngine(t, NewCentral(), 2, 30)
	smallP, bigP := NewCentral(), NewCentral()
	smallP.OnJob(small.Scheduler(0), localJob(1, 0))
	bigP.OnJob(big.Scheduler(0), localJob(1, 0))
	small.K.Run(2000)
	big.K.Run(2000)
	if big.Metrics.RMSOverhead <= small.Metrics.RMSOverhead {
		t.Fatalf("decision cost flat: big=%v small=%v",
			big.Metrics.RMSOverhead, small.Metrics.RMSOverhead)
	}
}
