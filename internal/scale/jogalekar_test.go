package scale

import (
	"math"
	"testing"
)

func jwMeasurement() *Measurement {
	return &Measurement{
		RMS: "TEST",
		Points: []Point{
			{K: 1, Obs: Observation{Throughput: 10, MeanResponse: 100}},
			{K: 2, Obs: Observation{Throughput: 20, MeanResponse: 100}},
			{K: 4, Obs: Observation{Throughput: 30, MeanResponse: 400}},
		},
	}
}

func TestJogalekarWoodsideBasics(t *testing.T) {
	r, err := JogalekarWoodside(jwMeasurement(), JWParams{TargetResponse: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Psi) != 3 || r.Psi[0] != 1 {
		t.Fatalf("psi = %v", r.Psi)
	}
	// k=2: throughput doubled, response unchanged, cost doubled:
	// productivity identical, psi = 1 — ideal linear scaling.
	if math.Abs(r.Psi[1]-1) > 1e-9 {
		t.Fatalf("ideal scaling psi = %v, want 1", r.Psi[1])
	}
	// k=4: throughput x3 but cost x4 and responses past target:
	// psi must collapse below 1.
	if r.Psi[2] >= 1 {
		t.Fatalf("degraded scaling psi = %v, want < 1", r.Psi[2])
	}
	if !r.Scalable(1, 0.8) {
		t.Error("ideal point should be scalable at threshold 0.8")
	}
	if r.Scalable(2, 0.8) {
		t.Error("degraded point should not be scalable")
	}
	if r.Scalable(9, 0.8) || r.Scalable(-1, 0.8) {
		t.Error("out-of-range index must be false")
	}
}

func TestJogalekarWoodsideValueFunction(t *testing.T) {
	// A response exactly at target halves the value.
	m := &Measurement{
		RMS: "V",
		Points: []Point{
			{K: 1, Obs: Observation{Throughput: 10, MeanResponse: 0}},
			{K: 2, Obs: Observation{Throughput: 20, MeanResponse: 200}},
		},
	}
	r, err := JogalekarWoodside(m, JWParams{TargetResponse: 200})
	if err != nil {
		t.Fatal(err)
	}
	// P(1) = 10*1/1 = 10; P(2) = 20*0.5/2 = 5; psi = 0.5.
	if math.Abs(r.Psi[1]-0.5) > 1e-9 {
		t.Fatalf("psi = %v, want 0.5", r.Psi[1])
	}
}

func TestJogalekarWoodsideCustomCost(t *testing.T) {
	m := jwMeasurement()
	flat := func(int) float64 { return 1 }
	r, err := JogalekarWoodside(m, JWParams{TargetResponse: 1e12, Cost: flat})
	if err != nil {
		t.Fatal(err)
	}
	// With free scaling and no response penalty, psi tracks raw
	// throughput growth.
	if math.Abs(r.Psi[1]-2) > 1e-6 {
		t.Fatalf("psi = %v, want 2", r.Psi[1])
	}
}

func TestJogalekarWoodsideErrors(t *testing.T) {
	if _, err := JogalekarWoodside(jwMeasurement(), JWParams{}); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := JogalekarWoodside(&Measurement{}, JWParams{TargetResponse: 1}); err == nil {
		t.Error("empty measurement accepted")
	}
	bad := JWParams{TargetResponse: 1, Cost: func(int) float64 { return 0 }}
	if _, err := JogalekarWoodside(jwMeasurement(), bad); err == nil {
		t.Error("zero cost accepted")
	}
}

func TestJWSeries(t *testing.T) {
	r, err := JogalekarWoodside(jwMeasurement(), JWParams{TargetResponse: 200})
	if err != nil {
		t.Fatal(err)
	}
	s := r.JWSeries()
	if s.Name != "TEST" || len(s.Y) != 3 || s.X[2] != 4 {
		t.Fatalf("series = %+v", s)
	}
}
